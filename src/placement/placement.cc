#include "placement/placement.h"

#include <algorithm>
#include <cmath>

namespace silo::placement {
namespace {

constexpr double kRateEps = 1e-6;  // relative slack on rate comparisons

enum class PortKind {
  kServerUp,
  kServerDown,
  kRackUp,
  kRackDown,
  kPodUp,
  kPodDown
};

}  // namespace

PlacementEngine::PlacementEngine(const topology::Topology& topo, Policy policy,
                                 TimeNs nic_delay_allowance,
                                 bool hose_tightening)
    : topo_(topo),
      policy_(policy),
      nic_delay_allowance_(nic_delay_allowance),
      hose_tightening_(hose_tightening) {
  free_slots_.assign(topo.num_servers(), topo.config().vm_slots_per_server);
  free_slots_rack_.assign(
      topo.num_racks(),
      topo.config().vm_slots_per_server * topo.config().servers_per_rack);
  free_slots_pod_.assign(topo.num_pods(), topo.config().vm_slots_per_server *
                                              topo.config().servers_per_rack *
                                              topo.config().racks_per_pod);
  free_slots_total_ = topo.total_vm_slots();
  port_load_.resize(topo.num_ports());
  server_failed_.assign(static_cast<std::size_t>(topo.num_servers()), 0);
  quarantined_slots_.assign(static_cast<std::size_t>(topo.num_servers()), 0);
  port_failed_.assign(static_cast<std::size_t>(topo.num_ports()), 0);
}

void PlacementEngine::fail_server(int server) {
  if (server_failed_[static_cast<std::size_t>(server)]) return;
  server_failed_[static_cast<std::size_t>(server)] = 1;
  const int f = free_slots_[server];
  quarantined_slots_[static_cast<std::size_t>(server)] = f;
  free_slots_[server] = 0;
  free_slots_rack_[topo_.rack_of_server(server)] -= f;
  free_slots_pod_[topo_.pod_of_server(server)] -= f;
  free_slots_total_ -= f;
}

void PlacementEngine::restore_server(int server) {
  if (!server_failed_[static_cast<std::size_t>(server)]) return;
  server_failed_[static_cast<std::size_t>(server)] = 0;
  const int f = quarantined_slots_[static_cast<std::size_t>(server)];
  quarantined_slots_[static_cast<std::size_t>(server)] = 0;
  free_slots_[server] += f;
  free_slots_rack_[topo_.rack_of_server(server)] += f;
  free_slots_pod_[topo_.pod_of_server(server)] += f;
  free_slots_total_ += f;
}

void PlacementEngine::fail_port(topology::PortId p) {
  port_failed_[static_cast<std::size_t>(p.value)] = 1;
}

void PlacementEngine::restore_port(topology::PortId p) {
  port_failed_[static_cast<std::size_t>(p.value)] = 0;
}

std::vector<TenantId> PlacementEngine::tenants_on_server(int server) const {
  std::vector<TenantId> out;
  for (const auto& [id, rec] : tenants_) {
    for (const auto& [s, count] : rec.slot_usage) {
      if (s == server) {
        out.push_back(id);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool PlacementEngine::placement_uses_port(const TenantRecord& rec,
                                          int port) const {
  if (rec.slot_usage.size() < 2) return false;  // colocated: never on fabric
  int first_rack = -1, first_pod = -1;
  bool multi_rack = false, multi_pod = false;
  for (const auto& [s, count] : rec.slot_usage) {
    const int r = topo_.rack_of_server(s);
    const int p = topo_.pod_of_rack(r);
    if (first_rack < 0) first_rack = r;
    if (first_pod < 0) first_pod = p;
    multi_rack = multi_rack || r != first_rack;
    multi_pod = multi_pod || p != first_pod;
  }
  for (const auto& [s, count] : rec.slot_usage) {
    if (topo_.server_up(s).value == port || topo_.server_down(s).value == port)
      return true;
    const int r = topo_.rack_of_server(s);
    if (multi_rack &&
        (topo_.rack_up(r).value == port || topo_.rack_down(r).value == port))
      return true;
    const int p = topo_.pod_of_server(s);
    if (multi_pod &&
        (topo_.pod_up(p).value == port || topo_.pod_down(p).value == port))
      return true;
  }
  return false;
}

std::vector<TenantId> PlacementEngine::tenants_using_port(
    topology::PortId p) const {
  std::vector<TenantId> out;
  for (const auto& [id, rec] : tenants_) {
    if (placement_uses_port(rec, p.value)) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

TimeNs PlacementEngine::scope_path_capacity(Scope scope) const {
  const TimeNs qs = topo_.port(topo_.server_up(0)).queue_capacity;
  const TimeNs qr = topo_.num_racks() > 0
                        ? topo_.port(topo_.rack_up(0)).queue_capacity
                        : TimeNs{0};
  const TimeNs qp = topo_.port(topo_.pod_up(0)).queue_capacity;
  // Only switch queues count: the source NIC is a pacing conformance
  // point (void packets keep the wire curve-compliant).
  switch (scope) {
    case Scope::kServer:
      return TimeNs{0};
    case Scope::kRack:  // ToR egress toward the destination server
      return nic_delay_allowance_ + qs;
    case Scope::kPod:
      return nic_delay_allowance_ + qs + 2 * qr;
    case Scope::kDatacenter:
      return nic_delay_allowance_ + qs + 2 * qr + 2 * qp;
  }
  return TimeNs{0};
}

Scope PlacementEngine::widest_scope_for_delay(const SiloGuarantee& g) const {
  if (policy_ != Policy::kSilo || !g.wants_delay_guarantee())
    return Scope::kDatacenter;
  for (Scope s : {Scope::kDatacenter, Scope::kPod, Scope::kRack}) {
    if (scope_path_capacity(s) <= g.delay) return s;
  }
  return Scope::kServer;
}

TimeNs PlacementEngine::upstream_capacity(int kind_int, Scope scope) const {
  const auto kind = static_cast<PortKind>(kind_int);
  const TimeNs qr = topo_.port(topo_.rack_up(0)).queue_capacity;
  const TimeNs qp = topo_.port(topo_.pod_up(0)).queue_capacity;
  // Queueing the tenant's traffic may already have absorbed before it
  // reaches a port of this kind (Kurose propagation). The NIC egress is a
  // conformance point, so up-traffic first queues at the ToR.
  switch (kind) {
    case PortKind::kServerUp:
    case PortKind::kRackUp:
      return TimeNs{0};
    case PortKind::kPodUp:
      return qr;  // crossed the ToR uplink queue
    case PortKind::kPodDown:
      return qr + qp;
    case PortKind::kRackDown:
      return scope == Scope::kDatacenter ? qr + 2 * qp : qr;
    case PortKind::kServerDown:
      switch (scope) {
        case Scope::kRack:
          return TimeNs{0};  // straight from conformant source NICs
        case Scope::kPod:
          return 2 * qr;
        default:
          return 2 * qr + 2 * qp;
      }
  }
  return TimeNs{0};
}

PortContribution PlacementEngine::cut_contribution(const TenantRequest& req,
                                                   int m_side,
                                                   TimeNs upstream,
                                                   RateBps line_cap) const {
  PortContribution c;
  const int n = req.num_vms;
  if (m_side <= 0 || m_side >= n) return c;  // nothing crosses this cut
  const auto& g = req.guarantee;
  const double hose_rate =
      static_cast<double>(hose_tightening_ ? std::min(m_side, n - m_side)
                                           : m_side) *
      g.bandwidth.bps();

  if (policy_ == Policy::kOktopus) {
    c.rate_bps = std::min(hose_rate, static_cast<double>(line_cap));
    c.burst_rate_bps = c.rate_bps;
    return c;
  }

  const RateBps bmax = g.burst_rate > RateBps{0} ? g.burst_rate : g.bandwidth;
  // The m source VMs occupy at least ceil(m / slots-per-server) servers,
  // so their combined wire rate cannot exceed that many access links.
  const int min_servers =
      (m_side + topo_.config().vm_slots_per_server - 1) /
      topo_.config().vm_slots_per_server;
  const RateBps source_cap =
      static_cast<double>(min_servers) * topo_.config().server_link_rate;

  // Closed-form equivalent of tenant_cut_curve + propagate_through_port
  // (this runs in the inner loop of admission control, so no Curve
  // allocations): the cut curve is min(mtu + brate*t, m*S + hose*t);
  // shifting it left by `upstream` (Kurose) inflates both intercepts.
  const double sustained = std::min(hose_rate, source_cap.bps());
  const double brate = std::max(
      sustained,
      std::min(static_cast<double>(m_side) * bmax.bps(), source_cap.bps()));
  const double up_ns = static_cast<double>(upstream);
  const double burst0 =
      static_cast<double>(m_side) * static_cast<double>(g.burst);
  c.rate_bps = sustained;
  c.burst_bytes = burst0 + sustained / 8e9 * up_ns;
  c.jump_bytes =
      std::min(static_cast<double>(kMtu) + brate / 8e9 * up_ns, c.burst_bytes);
  c.jump_bytes = std::max(c.jump_bytes, static_cast<double>(kMtu));
  c.burst_rate_bps = upstream == TimeNs{0} ? brate : source_cap.bps();
  (void)line_cap;
  return c;
}

bool PlacementEngine::port_admits(int port, const PortContribution& c) const {
  // A dead port cannot honor a reservation; zero-reservation probes
  // (best-effort tenants) pass so degraded placement stays feasible.
  if (port_failed_[static_cast<std::size_t>(port)] &&
      (c.rate_bps > 0 || c.burst_bytes > 0))
    return false;
  if (policy_ == Policy::kLocality) return true;
  const auto id = topology::PortId{port};
  const auto& p = topo_.port(id);
  const auto& load = port_load_[port];
  if (load.rate_bps() + c.rate_bps > p.rate.bps() * (1.0 + kRateEps))
    return false;
  // Bandwidth reservation is the whole story for Oktopus, and for the NIC
  // egress (the pacer absorbs bursts before the wire, so feasibility there
  // is purely about sustained rate).
  if (policy_ == Policy::kOktopus || topo_.is_nic_port(id)) return true;
  const TimeNs bound = load.queue_bound(p.rate, &c);
  return bound >= TimeNs{0} && bound <= p.queue_capacity;
}

bool PlacementEngine::server_ports_ok(const TenantRequest& req, int server,
                                      int m_here, Scope scope) const {
  if (policy_ == Policy::kLocality) return true;
  // Best-effort tenants reserve nothing (slots-only admission, matching
  // tenant_contributions): probing ports with their nominal guarantee
  // would wrongly block the degraded fallback on failed or loaded ports.
  if (req.tenant_class == TenantClass::kBestEffort) return true;
  const int n = req.num_vms;
  if (m_here >= n) return true;  // all VMs colocated: no fabric traffic
  const RateBps link = topo_.config().server_link_rate;
  const auto up = cut_contribution(
      req, m_here, upstream_capacity(static_cast<int>(PortKind::kServerUp), scope),
      link);
  if (!port_admits(topo_.server_up(server).value, up)) return false;
  const auto down = cut_contribution(
      req, n - m_here,
      upstream_capacity(static_cast<int>(PortKind::kServerDown), scope), link);
  return port_admits(topo_.server_down(server).value, down);
}

std::optional<PlacementEngine::CountMap> PlacementEngine::pack_servers(
    const TenantRequest& req, const std::vector<int>& servers,
    Scope scope) const {
  CountMap counts;
  int remaining = req.num_vms;
  // Fault domains (§4.2.3): capping each server at ceil(n/d) VMs forces
  // the tenant across at least d servers.
  const int domains = std::max(1, req.min_fault_domains);
  const int domain_cap = (req.num_vms + domains - 1) / domains;
  for (int s : servers) {
    if (remaining == 0) break;
    const int cap =
        std::min({free_slots_[s], remaining, domain_cap});
    for (int m = cap; m >= 1; --m) {
      if (server_ports_ok(req, s, m, scope)) {
        counts.emplace_back(s, m);
        remaining -= m;
        break;
      }
    }
  }
  if (remaining > 0) return std::nullopt;
  return counts;
}

std::vector<std::pair<int, PortContribution>>
PlacementEngine::tenant_contributions(const TenantRequest& req,
                                      const CountMap& counts,
                                      Scope scope) const {
  std::vector<std::pair<int, PortContribution>> out;
  if (policy_ == Policy::kLocality ||
      req.tenant_class == TenantClass::kBestEffort)
    return out;  // best-effort traffic rides low priority: no reservation

  const int n = req.num_vms;
  const RateBps link = topo_.config().server_link_rate;
  auto push = [&](topology::PortId id, int m_side, PortKind kind) {
    const auto c = cut_contribution(
        req, m_side, upstream_capacity(static_cast<int>(kind), scope), link);
    if (c.rate_bps > 0 || c.burst_bytes > 0)
      out.emplace_back(id.value, c);
  };

  std::map<int, int> per_rack, per_pod;
  for (const auto& [server, m] : counts) {
    push(topo_.server_up(server), m, PortKind::kServerUp);
    push(topo_.server_down(server), n - m, PortKind::kServerDown);
    per_rack[topo_.rack_of_server(server)] += m;
    per_pod[topo_.pod_of_server(server)] += m;
  }
  if (scope >= Scope::kPod) {
    for (const auto& [rack, m] : per_rack) {
      push(topo_.rack_up(rack), m, PortKind::kRackUp);
      push(topo_.rack_down(rack), n - m, PortKind::kRackDown);
    }
  }
  if (scope >= Scope::kDatacenter && topo_.num_pods() > 1) {
    for (const auto& [pod, m] : per_pod) {
      push(topo_.pod_up(pod), m, PortKind::kPodUp);
      push(topo_.pod_down(pod), n - m, PortKind::kPodDown);
    }
  }
  return out;
}

bool PlacementEngine::validate_candidate(const TenantRequest& req,
                                         const CountMap& counts,
                                         Scope scope) const {
  if (policy_ == Policy::kLocality) return true;
  for (const auto& [port, c] : tenant_contributions(req, counts, scope)) {
    if (!port_admits(port, c)) return false;
  }
  return true;
}

std::optional<PlacementEngine::CountMap> PlacementEngine::try_scope(
    const TenantRequest& req, Scope scope, int anchor) const {
  const auto& cfg = topo_.config();
  std::vector<int> servers;
  switch (scope) {
    case Scope::kServer: {
      if (req.min_fault_domains > 1) return std::nullopt;
      if (free_slots_[anchor] < req.num_vms) return std::nullopt;
      return CountMap{{anchor, req.num_vms}};
    }
    case Scope::kRack: {
      const int first = topo_.first_server_of_rack(anchor);
      for (int i = 0; i < cfg.servers_per_rack; ++i)
        if (free_slots_[first + i] > 0) servers.push_back(first + i);
      break;
    }
    case Scope::kPod: {
      const int first_rack = topo_.first_rack_of_pod(anchor);
      for (int r = 0; r < cfg.racks_per_pod; ++r) {
        const int first = topo_.first_server_of_rack(first_rack + r);
        for (int i = 0; i < cfg.servers_per_rack; ++i)
          if (free_slots_[first + i] > 0) servers.push_back(first + i);
      }
      break;
    }
    case Scope::kDatacenter: {
      for (int s = 0; s < topo_.num_servers(); ++s)
        if (free_slots_[s] > 0) servers.push_back(s);
      break;
    }
  }
  auto counts = pack_servers(req, servers, scope);
  if (!counts) return std::nullopt;
  if (!validate_candidate(req, *counts, scope)) return std::nullopt;
  return counts;
}

std::optional<AdmittedTenant> PlacementEngine::place(
    const TenantRequest& request) {
  if (request.num_vms < 1) return std::nullopt;
  if (request.num_vms > free_slots_total_) return std::nullopt;
  if (policy_ == Policy::kSilo &&
      request.tenant_class != TenantClass::kBestEffort &&
      request.guarantee.burst_rate > RateBps{0} &&
      request.guarantee.burst_rate < request.guarantee.bandwidth)
    return std::nullopt;  // malformed guarantee

  const Scope widest = widest_scope_for_delay(request.guarantee);

  for (int sc = static_cast<int>(Scope::kServer);
       sc <= static_cast<int>(widest); ++sc) {
    const auto scope = static_cast<Scope>(sc);
    int anchors = 1;
    switch (scope) {
      case Scope::kServer:
        anchors = topo_.num_servers();
        break;
      case Scope::kRack:
        anchors = topo_.num_racks();
        break;
      case Scope::kPod:
        anchors = topo_.num_pods();
        break;
      case Scope::kDatacenter:
        anchors = 1;
        break;
    }
    for (int a = 0; a < anchors; ++a) {
      // Cheap slot-count skips keep first-fit fast in large datacenters.
      if (scope == Scope::kServer && free_slots_[a] < request.num_vms)
        continue;
      if (scope == Scope::kRack && free_slots_rack_[a] < request.num_vms)
        continue;
      if (scope == Scope::kPod && free_slots_pod_[a] < request.num_vms)
        continue;
      if (auto counts = try_scope(request, scope, a)) {
        TenantRecord rec;
        rec.request = request;
        rec.slot_usage = *counts;
        rec.contributions = tenant_contributions(request, *counts, scope);
        AdmittedTenant admitted;
        commit(std::move(rec), admitted);
        return admitted;
      }
    }
  }
  return std::nullopt;
}

void PlacementEngine::commit(TenantRecord&& rec, AdmittedTenant& out) {
  out.id = next_id_++;
  for (const auto& [server, count] : rec.slot_usage) {
    free_slots_[server] -= count;
    free_slots_rack_[topo_.rack_of_server(server)] -= count;
    free_slots_pod_[topo_.pod_of_server(server)] -= count;
    free_slots_total_ -= count;
    for (int i = 0; i < count; ++i) out.vm_to_server.push_back(server);
  }
  for (const auto& [port, c] : rec.contributions) port_load_[port].add(c);
  rec.vm_to_server = out.vm_to_server;
  tenants_.emplace(out.id, std::move(rec));
}

void PlacementEngine::remove(TenantId id) {
  auto it = tenants_.find(id);
  if (it == tenants_.end()) return;
  for (const auto& [server, count] : it->second.slot_usage) {
    if (server_failed_[static_cast<std::size_t>(server)]) {
      // Evacuating a dead server: the slots exist but are unusable until
      // the hardware comes back.
      quarantined_slots_[static_cast<std::size_t>(server)] += count;
      continue;
    }
    free_slots_[server] += count;
    free_slots_rack_[topo_.rack_of_server(server)] += count;
    free_slots_pod_[topo_.pod_of_server(server)] += count;
    free_slots_total_ += count;
  }
  for (const auto& [port, c] : it->second.contributions)
    port_load_[port].remove(c);
  tenants_.erase(it);
}

double PlacementEngine::port_reservation(topology::PortId p) const {
  return port_load_[p.value].rate_bps() / topo_.port(p).rate.bps();
}

TimeNs PlacementEngine::port_queue_bound(topology::PortId p) const {
  const auto& load = port_load_[p.value];
  if (load.empty()) return TimeNs{0};
  const auto analysis = netcalc::analyze_queue(
      load.arrival_curve(), netcalc::Curve::constant_rate(topo_.port(p).rate));
  return analysis.queue_bound.value_or(TimeNs{-1});
}

}  // namespace silo::placement
