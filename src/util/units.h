// Units and quantities used throughout the Silo library.
//
// Time is kept as integer nanoseconds (int64): at nanosecond resolution a
// signed 64-bit tick counter spans ~292 years, far beyond any simulation,
// and integer time keeps the discrete-event simulator deterministic.
// Rates are double bits-per-second; sizes are integer bytes.
#pragma once

#include <cstdint>

namespace silo {

/// Simulated time in nanoseconds.
using TimeNs = std::int64_t;

inline constexpr TimeNs kNsec = 1;
inline constexpr TimeNs kUsec = 1000;
inline constexpr TimeNs kMsec = 1000 * kUsec;
inline constexpr TimeNs kSec = 1000 * kMsec;

/// Link / guarantee rate in bits per second.
using RateBps = double;

inline constexpr RateBps kKbps = 1e3;
inline constexpr RateBps kMbps = 1e6;
inline constexpr RateBps kGbps = 1e9;

/// Data sizes in bytes.
using Bytes = std::int64_t;

inline constexpr Bytes kKB = 1000;
inline constexpr Bytes kKiB = 1024;
inline constexpr Bytes kMB = 1000 * kKB;

/// Ethernet framing constants (used by the pacer and the packet simulator).
/// An MTU-sized frame on the wire: 1500 B payload + 14 B Ethernet header +
/// 4 B FCS + 8 B preamble + 12 B inter-frame gap.
inline constexpr Bytes kMtu = 1500;
inline constexpr Bytes kEthOverhead = 38;
/// Minimum Ethernet frame on the wire, including preamble and IFG (the
/// paper's 84-byte "void packet" floor: 64 B frame + 20 B preamble/IFG).
inline constexpr Bytes kMinWireFrame = 84;

/// Time to serialize `bytes` onto a link of rate `bps`, rounded up to a
/// whole nanosecond so that back-to-back transmissions never overlap.
constexpr TimeNs transmission_time(Bytes bytes, RateBps bps) {
  if (bps <= 0.0) return 0;
  const double ns = static_cast<double>(bytes) * 8.0 * 1e9 / bps;
  const auto t = static_cast<TimeNs>(ns);
  return (static_cast<double>(t) < ns) ? t + 1 : t;
}

/// Bytes that a rate can emit over an interval (truncated).
constexpr Bytes bytes_in(RateBps bps, TimeNs dt) {
  if (dt <= 0 || bps <= 0.0) return 0;
  return static_cast<Bytes>(bps * static_cast<double>(dt) / 8e9);
}

}  // namespace silo
