// Strong-typed units and quantities used throughout the Silo library.
//
// Time is integer nanoseconds (int64): at nanosecond resolution a signed
// 64-bit tick counter spans ~292 years, far beyond any simulation, and
// integer time keeps the discrete-event simulator deterministic. Rates are
// double bits-per-second; sizes are integer bytes.
//
// Each quantity is a thin constexpr strong type, not a raw alias: mixing
// nanoseconds, bytes and bits-per-second is a compile error, construction
// from raw arithmetic values is explicit, and only the dimensionally
// correct operator set exists:
//
//   TimeNs  ± TimeNs  -> TimeNs      Bytes ± Bytes -> Bytes
//   TimeNs  * integer -> TimeNs      Bytes * integer -> Bytes
//   TimeNs  / TimeNs  -> int64       Bytes / Bytes -> int64   (ratios)
//   TimeNs  % TimeNs  -> TimeNs      Bytes % Bytes -> Bytes
//   Bytes   / RateBps -> TimeNs      (serialization time, ceil — see
//                                     transmission_time())
//   RateBps * TimeNs  -> Bytes       (bytes emitted over an interval,
//                                     truncated — see bytes_in())
//   Bytes   / TimeNs  -> RateBps     (average rate)
//
// Cross-unit assignment (TimeNs <-> Bytes <-> RateBps) does not compile;
// tests/compile_fail/ proves it stays that way. In debug builds (and under
// SILO_AUDIT) the integer types check every + - * for int64 overflow.
//
// Escaping to a raw number is always explicit: `.count()` / `.bps()` or a
// static_cast. Keep such escapes at the edges (formatting, hashing,
// histograms), never in simulated-time arithmetic.
#pragma once

#include <cstdint>
#include <ostream>
#include <stdexcept>
#include <type_traits>

namespace silo {

#if !defined(NDEBUG) || defined(SILO_AUDIT)
#define SILO_UNITS_CHECKED 1
#endif

namespace unit_detail {

template <class T>
inline constexpr bool is_scalar_v =
    std::is_arithmetic_v<T> && !std::is_same_v<T, bool>;

constexpr std::int64_t checked_add(std::int64_t a, std::int64_t b,
                                   const char* what) {
#ifdef SILO_UNITS_CHECKED
  std::int64_t r = 0;
  if (__builtin_add_overflow(a, b, &r)) throw std::overflow_error(what);
  return r;
#else
  (void)what;
  return a + b;
#endif
}

constexpr std::int64_t checked_sub(std::int64_t a, std::int64_t b,
                                   const char* what) {
#ifdef SILO_UNITS_CHECKED
  std::int64_t r = 0;
  if (__builtin_sub_overflow(a, b, &r)) throw std::overflow_error(what);
  return r;
#else
  (void)what;
  return a - b;
#endif
}

constexpr std::int64_t checked_mul(std::int64_t a, std::int64_t b,
                                   const char* what) {
#ifdef SILO_UNITS_CHECKED
  std::int64_t r = 0;
  if (__builtin_mul_overflow(a, b, &r)) throw std::overflow_error(what);
  return r;
#else
  (void)what;
  return a * b;
#endif
}

}  // namespace unit_detail

/// Simulated time in nanoseconds.
class TimeNs {
 public:
  constexpr TimeNs() = default;
  template <class T, std::enable_if_t<unit_detail::is_scalar_v<T>, int> = 0>
  constexpr explicit TimeNs(T v) : v_(static_cast<std::int64_t>(v)) {}

  /// Raw nanosecond count — the only way (besides static_cast) back to a
  /// raw number. Use at formatting/hashing edges only.
  constexpr std::int64_t count() const { return v_; }

  template <class T, std::enable_if_t<unit_detail::is_scalar_v<T>, int> = 0>
  constexpr explicit operator T() const {
    return static_cast<T>(v_);
  }

  static constexpr TimeNs max() { return TimeNs{INT64_MAX}; }
  static constexpr TimeNs min() { return TimeNs{INT64_MIN}; }

  friend constexpr auto operator<=>(TimeNs, TimeNs) = default;

  constexpr TimeNs& operator+=(TimeNs o) {
    v_ = unit_detail::checked_add(v_, o.v_, "TimeNs overflow");
    return *this;
  }
  constexpr TimeNs& operator-=(TimeNs o) {
    v_ = unit_detail::checked_sub(v_, o.v_, "TimeNs underflow");
    return *this;
  }
  friend constexpr TimeNs operator+(TimeNs a, TimeNs b) { return a += b; }
  friend constexpr TimeNs operator-(TimeNs a, TimeNs b) { return a -= b; }
  friend constexpr TimeNs operator-(TimeNs a) { return TimeNs{-a.v_}; }

  template <class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  friend constexpr TimeNs operator*(TimeNs a, I k) {
    return TimeNs{unit_detail::checked_mul(a.v_, static_cast<std::int64_t>(k),
                                           "TimeNs overflow")};
  }
  template <class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  friend constexpr TimeNs operator*(I k, TimeNs a) {
    return a * k;
  }
  template <class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  friend constexpr TimeNs operator/(TimeNs a, I k) {
    return TimeNs{a.v_ / static_cast<std::int64_t>(k)};
  }
  /// Dimensionless ratio of two durations.
  friend constexpr std::int64_t operator/(TimeNs a, TimeNs b) {
    return a.v_ / b.v_;
  }
  friend constexpr TimeNs operator%(TimeNs a, TimeNs b) {
    return TimeNs{a.v_ % b.v_};
  }

 private:
  std::int64_t v_ = 0;
};

inline constexpr TimeNs kNsec{1};
inline constexpr TimeNs kUsec{1000};
inline constexpr TimeNs kMsec{1000 * 1000};
inline constexpr TimeNs kSec{1000 * 1000 * 1000};

/// Data sizes in bytes.
class Bytes {
 public:
  constexpr Bytes() = default;
  template <class T, std::enable_if_t<unit_detail::is_scalar_v<T>, int> = 0>
  constexpr explicit Bytes(T v) : v_(static_cast<std::int64_t>(v)) {}

  constexpr std::int64_t count() const { return v_; }

  template <class T, std::enable_if_t<unit_detail::is_scalar_v<T>, int> = 0>
  constexpr explicit operator T() const {
    return static_cast<T>(v_);
  }

  static constexpr Bytes max() { return Bytes{INT64_MAX}; }

  friend constexpr auto operator<=>(Bytes, Bytes) = default;

  constexpr Bytes& operator+=(Bytes o) {
    v_ = unit_detail::checked_add(v_, o.v_, "Bytes overflow");
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    v_ = unit_detail::checked_sub(v_, o.v_, "Bytes underflow");
    return *this;
  }
  friend constexpr Bytes operator+(Bytes a, Bytes b) { return a += b; }
  friend constexpr Bytes operator-(Bytes a, Bytes b) { return a -= b; }
  friend constexpr Bytes operator-(Bytes a) { return Bytes{-a.v_}; }

  template <class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  friend constexpr Bytes operator*(Bytes a, I k) {
    return Bytes{unit_detail::checked_mul(a.v_, static_cast<std::int64_t>(k),
                                          "Bytes overflow")};
  }
  template <class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  friend constexpr Bytes operator*(I k, Bytes a) {
    return a * k;
  }
  template <class I, std::enable_if_t<std::is_integral_v<I>, int> = 0>
  friend constexpr Bytes operator/(Bytes a, I k) {
    return Bytes{a.v_ / static_cast<std::int64_t>(k)};
  }
  friend constexpr std::int64_t operator/(Bytes a, Bytes b) {
    return a.v_ / b.v_;
  }
  friend constexpr Bytes operator%(Bytes a, Bytes b) {
    return Bytes{a.v_ % b.v_};
  }

 private:
  std::int64_t v_ = 0;
};

inline constexpr Bytes kKB{1000};
inline constexpr Bytes kKiB{1024};
inline constexpr Bytes kMB{1000 * 1000};

/// Ethernet framing constants (used by the pacer and the packet simulator).
/// An MTU-sized frame on the wire: 1500 B payload + 14 B Ethernet header +
/// 4 B FCS + 8 B preamble + 12 B inter-frame gap.
inline constexpr Bytes kMtu{1500};
inline constexpr Bytes kEthOverhead{38};
/// Minimum Ethernet frame on the wire, including preamble and IFG (the
/// paper's 84-byte "void packet" floor: 64 B frame + 20 B preamble/IFG).
inline constexpr Bytes kMinWireFrame{84};

/// Link / guarantee rate in bits per second.
class RateBps {
 public:
  constexpr RateBps() = default;
  template <class T, std::enable_if_t<unit_detail::is_scalar_v<T>, int> = 0>
  constexpr explicit RateBps(T v) : v_(static_cast<double>(v)) {}

  /// Raw bits-per-second value.
  constexpr double bps() const { return v_; }

  template <class T, std::enable_if_t<unit_detail::is_scalar_v<T>, int> = 0>
  constexpr explicit operator T() const {
    return static_cast<T>(v_);
  }

  friend constexpr auto operator<=>(RateBps, RateBps) = default;

  constexpr RateBps& operator+=(RateBps o) {
    v_ += o.v_;
    return *this;
  }
  constexpr RateBps& operator-=(RateBps o) {
    v_ -= o.v_;
    return *this;
  }
  friend constexpr RateBps operator+(RateBps a, RateBps b) { return a += b; }
  friend constexpr RateBps operator-(RateBps a, RateBps b) { return a -= b; }

  template <class T, std::enable_if_t<unit_detail::is_scalar_v<T>, int> = 0>
  friend constexpr RateBps operator*(RateBps a, T k) {
    return RateBps{a.v_ * static_cast<double>(k)};
  }
  template <class T, std::enable_if_t<unit_detail::is_scalar_v<T>, int> = 0>
  friend constexpr RateBps operator*(T k, RateBps a) {
    return a * k;
  }
  template <class T, std::enable_if_t<unit_detail::is_scalar_v<T>, int> = 0>
  friend constexpr RateBps operator/(RateBps a, T k) {
    return RateBps{a.v_ / static_cast<double>(k)};
  }
  /// Dimensionless ratio of two rates.
  friend constexpr double operator/(RateBps a, RateBps b) {
    return a.v_ / b.v_;
  }

 private:
  double v_ = 0.0;
};

inline constexpr RateBps kKbps{1e3};
inline constexpr RateBps kMbps{1e6};
inline constexpr RateBps kGbps{1e9};

/// Time to serialize `bytes` onto a link of rate `bps`, rounded up to a
/// whole nanosecond so that back-to-back transmissions never overlap.
///
/// Integral rates (every realistic link or guarantee rate) take an exact
/// 128-bit ceil-division path: the previous double round-trip lost
/// exactness once `bytes * 8e9` exceeded 2^53 (~1.1 MB payloads).
/// Fractional rates keep the legacy correctly-rounded double path.
constexpr TimeNs transmission_time(Bytes bytes, RateBps bps) {
  if (bps.bps() <= 0.0) return TimeNs{0};
  const double r = bps.bps();
  constexpr double kMaxIntegralRate = 9.2e18;  // fits in int64
  if (r >= 1.0 && r < kMaxIntegralRate &&
      r == static_cast<double>(static_cast<std::int64_t>(r))) {
    const auto den = static_cast<std::int64_t>(r);
    const auto num = static_cast<__int128>(bytes.count()) * 8 * 1000000000;
    if (num <= 0) return TimeNs{0};
    return TimeNs{static_cast<std::int64_t>((num + den - 1) / den)};
  }
  const double ns = static_cast<double>(bytes.count()) * 8.0 * 1e9 / r;
  const auto t = static_cast<std::int64_t>(ns);
  return TimeNs{(static_cast<double>(t) < ns) ? t + 1 : t};
}

/// Bytes that a rate can emit over an interval (truncated).
constexpr Bytes bytes_in(RateBps bps, TimeNs dt) {
  if (dt <= TimeNs{0} || bps.bps() <= 0.0) return Bytes{0};
  return Bytes{static_cast<std::int64_t>(bps.bps() *
                                         static_cast<double>(dt.count()) /
                                         8e9)};
}

/// Serialization time as an operator: `Bytes / RateBps -> TimeNs`.
constexpr TimeNs operator/(Bytes b, RateBps r) {
  return transmission_time(b, r);
}

/// Emitted volume as an operator: `RateBps * TimeNs -> Bytes`.
constexpr Bytes operator*(RateBps r, TimeNs dt) { return bytes_in(r, dt); }
constexpr Bytes operator*(TimeNs dt, RateBps r) { return bytes_in(r, dt); }

/// Formatting edges print the raw count, exactly as the weak aliases did.
inline std::ostream& operator<<(std::ostream& os, TimeNs t) {
  return os << t.count();
}
inline std::ostream& operator<<(std::ostream& os, Bytes b) {
  return os << b.count();
}
inline std::ostream& operator<<(std::ostream& os, RateBps r) {
  return os << r.bps();
}

/// Average rate over an interval: `Bytes / TimeNs -> RateBps`.
constexpr RateBps operator/(Bytes b, TimeNs dt) {
  if (dt <= TimeNs{0}) return RateBps{0};
  return RateBps{static_cast<double>(b.count()) * 8e9 /
                 static_cast<double>(dt.count())};
}

}  // namespace silo
