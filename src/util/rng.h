// Deterministic random number generation for workloads and simulations.
//
// Every stochastic component takes an explicit seed so that experiments are
// reproducible run-to-run; nothing in the library reads global entropy.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace silo {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (inter-arrival times of a Poisson
  /// process of rate 1/mean).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Generalized Pareto with location mu, scale sigma, shape xi — the
  /// distribution Facebook's ETC trace analysis fits to value sizes and
  /// inter-arrival gaps (Atikoglu et al., SIGMETRICS 2012).
  double generalized_pareto(double mu, double sigma, double xi) {
    const double u = 1.0 - uniform();  // in (0, 1]
    if (std::abs(xi) < 1e-12) return mu - sigma * std::log(u);
    return mu + sigma * (std::pow(u, -xi) - 1.0) / xi;
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace silo
