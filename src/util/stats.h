// Sample accumulation and percentile/CDF reporting used by every bench.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace silo {

/// Accumulates scalar samples and answers summary queries. Percentile
/// queries sort lazily; adding samples after a query is allowed.
class Stats {
 public:
  void add(double v);
  void merge(const Stats& other);

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  double stddev() const;

  /// p in [0, 100]; linear interpolation between order statistics.
  /// Returns quiet NaN when no samples were recorded (empty stats are a
  /// normal outcome of faulted runs, not a programming error).
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  /// Fraction of samples strictly greater than `threshold`.
  double fraction_above(double threshold) const;

  /// Raw sample vector. Order contract: insertion order is preserved only
  /// until the first order-statistic query (percentile/median/min/max/
  /// fraction_above/cdf), which sorts the vector in place; after any such
  /// query this view is sorted ascending. Callers needing arrival order
  /// must copy before querying.
  const std::vector<double>& samples() const { return samples_; }

  /// Evenly spaced CDF points (value at each of `points` cumulative
  /// fractions), useful for printing paper-style CDF series.
  std::vector<std::pair<double, double>> cdf(std::size_t points = 100) const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  double sum_ = 0.0;
  mutable bool sorted_ = true;
};

/// Fixed-width text table used by benches to print paper-style rows.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Throws std::invalid_argument unless `cells` matches the header's
  /// column count — malformed bench tables must fail loudly, not truncate.
  void add_row(std::vector<std::string> cells);
  std::string to_string() const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace silo
