#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace silo {

void Stats::add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_ = samples_.size() <= 1;
}

void Stats::merge(const Stats& other) {
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sum_ += other.sum_;
  sorted_ = samples_.size() <= 1;
}

double Stats::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double Stats::min() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.front();
}

double Stats::max() const {
  ensure_sorted();
  return samples_.empty() ? 0.0 : samples_.back();
}

double Stats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Stats::percentile(double p) const {
  // NaN, not a throw: report paths routinely query percentiles of stats
  // that ended up empty (e.g. a faulted run where a driver completed no
  // messages) and must render "-" rather than crash mid-report.
  if (samples_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile range");
  ensure_sorted();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double Stats::fraction_above(double threshold) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it =
      std::upper_bound(samples_.begin(), samples_.end(), threshold);
  return static_cast<double>(samples_.end() - it) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> Stats::cdf(std::size_t points) const {
  ensure_sorted();
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  const std::size_t n = samples_.size();
  for (std::size_t i = 1; i <= points; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(points);
    // The value at cumulative fraction f is the ceil(f*n)-th order
    // statistic; integer arithmetic (f = i/points) keeps the ceiling exact
    // where floating-point rounding of f*n could straddle an integer.
    const std::size_t rank = (i * n + points - 1) / points;  // ceil(i*n/points)
    out.emplace_back(frac, samples_[std::min(n - 1, rank - 1)]);
  }
  return out;
}

void Stats::ensure_sorted() const {
  if (!sorted_) {
    auto& mut = const_cast<std::vector<double>&>(samples_);
    std::sort(mut.begin(), mut.end());
    sorted_ = true;
  }
}

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size())
    throw std::invalid_argument(
        "TextTable::add_row: " + std::to_string(cells.size()) +
        " cells for a " + std::to_string(header_.size()) + "-column header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::fmt(double v, int precision) {
  if (std::isnan(v)) return "-";  // empty-stats percentiles render as gaps
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << cell << std::string(widths[c] - cell.size() + 2, ' ');
    }
    os << '\n';
  };
  emit(header_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace silo
