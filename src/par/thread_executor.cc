#include "par/thread_executor.h"

#include <algorithm>

namespace silo::par {

ThreadPoolExecutor::ThreadPoolExecutor(int threads) {
  const int extra = std::max(0, threads - 1);  // the caller is a worker too
  workers_.reserve(static_cast<std::size_t>(extra));
  for (int i = 0; i < extra; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPoolExecutor::~ThreadPoolExecutor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPoolExecutor::run_bodies() {
  // Claim tickets until the round is exhausted. Bodies run unlocked; any
  // exception is recorded under the lock with its index.
  std::unique_lock<std::mutex> lock(mu_);
  while (next_index_ < round_n_) {
    const int i = next_index_++;
    ++in_flight_;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*fn_)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err) errors_.emplace_back(i, err);
    if (--in_flight_ == 0 && next_index_ >= round_n_)
      done_cv_.notify_all();
  }
}

void ThreadPoolExecutor::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
    }
    run_bodies();
  }
}

void ThreadPoolExecutor::parallel_for(int n,
                                      const std::function<void(int)>& fn) {
  if (n <= 0) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    round_n_ = n;
    next_index_ = 0;
    in_flight_ = 0;
    errors_.clear();
    ++round_;
  }
  work_cv_.notify_all();
  run_bodies();  // the calling thread pulls tickets too
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return in_flight_ == 0 && next_index_ >= round_n_; });
  fn_ = nullptr;
  if (!errors_.empty()) {
    // Deterministic error selection: rethrow the lowest island index.
    std::sort(errors_.begin(), errors_.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    const std::exception_ptr err = errors_.front().second;
    errors_.clear();
    std::rethrow_exception(err);
  }
}

}  // namespace silo::par
