// The one component in the tree that owns threads. Everything under
// src/sim/ is sequential per island by contract (silo-lint enforces the
// threading-include ban there); this executor sees islands only as opaque
// indices and provides the window barrier the protocol requires.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/parallel.h"

namespace silo::par {

/// Persistent worker pool implementing sim::IslandExecutor.
///
/// parallel_for(n, fn) hands indices 0..n-1 to `threads` workers via an
/// atomic-free ticket under one mutex, then blocks until every body has
/// finished — the return edge is the conservative-window barrier, so it
/// must (and does) establish happens-before between all bodies and the
/// caller. Exceptions thrown by bodies are captured per index and the
/// lowest-index one is rethrown after the round completes, keeping error
/// reporting deterministic too.
class ThreadPoolExecutor final : public sim::IslandExecutor {
 public:
  explicit ThreadPoolExecutor(int threads);
  ~ThreadPoolExecutor() override;

  ThreadPoolExecutor(const ThreadPoolExecutor&) = delete;
  ThreadPoolExecutor& operator=(const ThreadPoolExecutor&) = delete;

  void parallel_for(int n, const std::function<void(int)>& fn) override;
  int threads() const override { return static_cast<int>(workers_.size()) + 1; }

 private:
  void worker_loop();
  void run_bodies();

  std::mutex mu_;
  std::condition_variable work_cv_;   ///< workers wait for a round
  std::condition_variable done_cv_;   ///< caller waits for the barrier
  const std::function<void(int)>* fn_ = nullptr;
  int round_n_ = 0;                   ///< indices in the current round
  int next_index_ = 0;                ///< ticket: next index to claim
  int in_flight_ = 0;                 ///< claimed but not yet finished
  std::uint64_t round_ = 0;           ///< generation counter for wakeups
  bool stop_ = false;
  std::vector<std::pair<int, std::exception_ptr>> errors_;
  std::vector<std::thread> workers_;
};

}  // namespace silo::par
