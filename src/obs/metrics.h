// MetricsRegistry: the observability layer's named-metric store.
//
// Metrics are registered once (cold path, by name) and updated through
// cached handles — a handle is one pointer into registry-owned stable
// storage, so the hot path is a single add/store with no map lookup, no
// lock and no allocation. A default-constructed handle points at a
// process-wide sink cell: components can update their metrics
// unconditionally, wired or not, without a branch.
//
// Three metric kinds:
//   Counter   — monotonically increasing int64 (events, bytes)
//   Gauge     — settable int64, with a set_max convenience for peaks
//   Histogram — fixed buckets chosen at registration; recording a sample
//               is a short linear scan over the bucket bounds
//
// The catalog (docs/OBSERVABILITY.md) lists every registered name; CI
// greps the catalog against the registration literals in src/.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

namespace silo::obs {

namespace detail {
/// Sink cells for unwired handles. Per-thread, not process-global: a
/// default-constructed handle binds the sink of the thread that created
/// it, and handles are confined to the thread that runs their component
/// (one island runs on exactly one thread per window), so the unwired
/// fast path stays a single unconditional add with no data race under
/// parallel islands. The values are meaningless and never read.
inline thread_local std::int64_t sink_cell = 0;
struct SinkHist;
SinkHist& sink_hist();
}  // namespace detail

class MetricsRegistry;

class Counter {
 public:
  Counter() : cell_(&detail::sink_cell) {}
  void inc(std::int64_t n = 1) { *cell_ += n; }
  std::int64_t value() const { return *cell_; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::int64_t* cell) : cell_(cell) {}
  std::int64_t* cell_;
};

class Gauge {
 public:
  Gauge() : cell_(&detail::sink_cell) {}
  void set(std::int64_t v) { *cell_ = v; }
  void set_max(std::int64_t v) {
    if (v > *cell_) *cell_ = v;
  }
  std::int64_t value() const { return *cell_; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::int64_t* cell) : cell_(cell) {}
  std::int64_t* cell_;
};

/// Backing state of one histogram. `bounds` are upper-inclusive bucket
/// edges; a final overflow bucket catches everything above the last edge,
/// so `counts.size() == bounds.size() + 1`.
struct HistogramState {
  std::vector<double> bounds;
  std::vector<std::int64_t> counts;
  std::int64_t count = 0;
  double sum = 0;
};

namespace detail {
struct SinkHist {
  HistogramState state;
  SinkHist() { state.counts.resize(1); }
};
inline SinkHist& sink_hist() {
  // Write-only per-thread sink for unwired Histogram handles; never read.
  // thread_local for the same confinement argument as sink_cell above.
  static thread_local SinkHist s;
  return s;
}
}  // namespace detail

class Histogram {
 public:
  Histogram() : state_(&detail::sink_hist().state) {}
  void record(double v) {
    HistogramState& h = *state_;
    std::size_t i = 0;
    while (i < h.bounds.size() && v > h.bounds[i]) ++i;
    ++h.counts[i];
    ++h.count;
    h.sum += v;
  }
  const HistogramState& state() const { return *state_; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramState* state) : state_(state) {}
  HistogramState* state_;
};

enum class MetricType { kCounter, kGauge, kHistogram };

const char* metric_type_name(MetricType t);

/// One metric's identity and current value, as returned by snapshot().
/// Histogram detail is copied out, so a snapshot stays valid after the
/// registry (e.g. a finished ClusterSim) is destroyed — benches snapshot
/// while the run is alive and write the manifest at exit.
struct MetricSample {
  std::string name;
  MetricType type = MetricType::kCounter;
  std::string unit;   ///< "packets", "bytes", "ns", ...
  std::string owner;  ///< component that updates it ("port", "pacer", ...)
  std::int64_t value = 0;                ///< counter/gauge value
  std::optional<HistogramState> hist;    ///< histogram detail (else empty)
};

/// Registration is cold-path and by unique name (duplicate names throw);
/// handle updates are the hot path. Cells live in deques so handles stay
/// valid as the registry grows.
class MetricsRegistry {
 public:
  Counter counter(const std::string& name, const std::string& unit,
                  const std::string& owner);
  Gauge gauge(const std::string& name, const std::string& unit,
              const std::string& owner);
  Histogram histogram(const std::string& name, const std::string& unit,
                      const std::string& owner, std::vector<double> bounds);

  /// Current value of every registered metric, in registration order.
  std::vector<MetricSample> snapshot() const;

  /// Value of a registered counter/gauge by name; throws if unknown or a
  /// histogram. Test/report convenience — not for hot paths.
  std::int64_t value(const std::string& name) const;

  bool has(const std::string& name) const;
  std::size_t size() const { return defs_.size(); }

 private:
  struct Def {
    std::string name, unit, owner;
    MetricType type;
    std::int64_t* cell = nullptr;
    HistogramState* hist = nullptr;
  };

  void check_new_name(const std::string& name) const;

  std::deque<std::int64_t> cells_;        ///< deque: stable addresses
  std::deque<HistogramState> hists_;
  std::vector<Def> defs_;
};

}  // namespace silo::obs
