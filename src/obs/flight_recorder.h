// FlightRecorder: a bounded ring buffer of typed per-packet events.
//
// Recording is hot-path friendly: one filter check plus a POD store into
// a preallocated ring; when full, the oldest events are overwritten
// (black-box semantics — the recorder always holds the most recent
// window). Filters select which traffic is recorded: everything, specific
// tenants, or specific locations (fabric ports / host NICs).
//
// Dumps:
//   dump_chrome_trace — Chrome trace_event JSON ("instant" events, one
//     row per location) loadable in chrome://tracing or ui.perfetto.dev
//   dump_jsonl        — one JSON object per line, for scripting
//
// Schema documented in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "util/units.h"

namespace silo::obs {

enum class FlightEventType : std::uint8_t {
  kPaced,      ///< release time stamped / handed to the NIC wire
  kEnqueued,   ///< accepted into a port queue
  kDequeued,   ///< selected for transmission (wire start)
  kDropped,    ///< congestion or fault drop
  kDelivered,  ///< handed to the destination transport
};

const char* flight_event_name(FlightEventType t);

/// Location encoding: fabric ports use their non-negative port index;
/// host-side sites use -1 - server (so server 0 -> -1, server 3 -> -4).
inline std::int32_t host_location(int server) { return -1 - server; }

struct FlightEvent {
  TimeNs at{};
  std::uint64_t packet_id = 0;
  std::int64_t seq = 0;
  std::int32_t flow_id = -1;
  std::int32_t tenant = -1;
  std::int32_t location = 0;
  std::int32_t bytes = 0;
  FlightEventType type = FlightEventType::kPaced;
  bool is_ack = false;
  bool fault = false;  ///< drop caused by fault injection, not congestion
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity);

  // -- filters (cold path) --------------------------------------------
  void enable_all() { all_ = true; }
  void enable_tenant(int tenant) { tenants_.push_back(tenant); }
  void enable_port(std::int32_t location) { locations_.push_back(location); }

  /// Flow-id -> tenant-id table used to resolve an event's tenant at
  /// record time (the recording sites only know the flow). Owned by
  /// ClusterSim; must outlive the recorder's use.
  void set_flow_tenants(const std::vector<int>* flow_tenant) {
    flow_tenant_ = flow_tenant;
  }

  // -- recording (hot path) -------------------------------------------
  /// Resolves the tenant, applies filters, and stores the event if it
  /// passes. `ev.tenant` is filled in from the flow table.
  void record(FlightEvent ev);

  // -- inspection / dumping -------------------------------------------
  std::size_t capacity() const { return ring_.size(); }
  std::size_t size() const { return wrapped_ ? ring_.size() : head_; }
  std::uint64_t total_recorded() const { return recorded_; }
  std::uint64_t overwritten() const {
    return recorded_ - static_cast<std::uint64_t>(size());
  }

  /// Events oldest-to-newest (copies out of the ring).
  std::vector<FlightEvent> in_order() const;

  void dump_jsonl(std::ostream& os) const;
  void dump_chrome_trace(std::ostream& os) const;

 private:
  bool wants(int tenant, std::int32_t location) const;

  std::vector<FlightEvent> ring_;
  std::size_t head_ = 0;  ///< next write slot
  bool wrapped_ = false;
  std::uint64_t recorded_ = 0;

  bool all_ = false;
  std::vector<int> tenants_;
  std::vector<std::int32_t> locations_;
  const std::vector<int>* flow_tenant_ = nullptr;
};

}  // namespace silo::obs
