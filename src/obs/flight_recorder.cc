#include "obs/flight_recorder.h"

#include <algorithm>
#include <stdexcept>

namespace silo::obs {

const char* flight_event_name(FlightEventType t) {
  switch (t) {
    case FlightEventType::kPaced:
      return "paced";
    case FlightEventType::kEnqueued:
      return "enqueued";
    case FlightEventType::kDequeued:
      return "dequeued";
    case FlightEventType::kDropped:
      return "dropped";
    case FlightEventType::kDelivered:
      return "delivered";
  }
  return "?";
}

FlightRecorder::FlightRecorder(std::size_t capacity) : ring_(capacity) {
  if (capacity == 0)
    throw std::invalid_argument("FlightRecorder capacity must be > 0");
}

bool FlightRecorder::wants(int tenant, std::int32_t location) const {
  if (all_) return true;
  if (std::find(tenants_.begin(), tenants_.end(), tenant) != tenants_.end())
    return true;
  return std::find(locations_.begin(), locations_.end(), location) !=
         locations_.end();
}

void FlightRecorder::record(FlightEvent ev) {
  if (ev.tenant < 0 && flow_tenant_ && ev.flow_id >= 0 &&
      static_cast<std::size_t>(ev.flow_id) < flow_tenant_->size()) {
    ev.tenant = (*flow_tenant_)[static_cast<std::size_t>(ev.flow_id)];
  }
  if (!wants(ev.tenant, ev.location)) return;
  ring_[head_] = ev;
  if (++head_ == ring_.size()) {
    head_ = 0;
    wrapped_ = true;
  }
  ++recorded_;
}

std::vector<FlightEvent> FlightRecorder::in_order() const {
  std::vector<FlightEvent> out;
  out.reserve(size());
  if (wrapped_) {
    out.insert(out.end(), ring_.begin() + static_cast<std::ptrdiff_t>(head_),
               ring_.end());
  }
  out.insert(out.end(), ring_.begin(),
             ring_.begin() + static_cast<std::ptrdiff_t>(head_));
  return out;
}

namespace {

// Events are POD with no string fields, so rendering by hand keeps the
// dumpers dependency-free.
void append_event_fields(std::ostream& os, const FlightEvent& e) {
  os << "\"t_ns\":" << e.at << ",\"type\":\"" << flight_event_name(e.type)
     << "\",\"packet_id\":" << e.packet_id << ",\"flow\":" << e.flow_id
     << ",\"tenant\":" << e.tenant << ",\"location\":" << e.location
     << ",\"seq\":" << e.seq << ",\"bytes\":" << e.bytes
     << ",\"ack\":" << (e.is_ack ? "true" : "false")
     << ",\"fault\":" << (e.fault ? "true" : "false");
}

}  // namespace

void FlightRecorder::dump_jsonl(std::ostream& os) const {
  for (const FlightEvent& e : in_order()) {
    os << '{';
    append_event_fields(os, e);
    os << "}\n";
  }
}

void FlightRecorder::dump_chrome_trace(std::ostream& os) const {
  // Instant events ("ph":"i"), one pid per simulation, one tid (row) per
  // location. chrome://tracing wants timestamps in microseconds; keep ns
  // resolution by emitting a fractional part.
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const FlightEvent& e : in_order()) {
    if (!first) os << ',';
    first = false;
    const std::int64_t us = e.at.count() / 1000;
    const std::int64_t frac = e.at.count() % 1000;
    os << "{\"name\":\"" << flight_event_name(e.type)
       << "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" << e.location
       << ",\"ts\":" << us << '.';
    // zero-padded 3-digit fractional microseconds
    os << (frac / 100) << (frac / 10 % 10) << (frac % 10);
    os << ",\"args\":{";
    append_event_fields(os, e);
    os << "}}";
  }
  os << "],\"displayTimeUnit\":\"ns\"}\n";
}

}  // namespace silo::obs
