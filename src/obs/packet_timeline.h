// PacketTimeline: per-packet stage accounting for latency-breakdown
// attribution, keyed by PacketHandle.
//
// The simulator's Packet POD is deliberately small and pooled (PR 1), so
// attribution state lives in this side table indexed by the pool *slot*
// (PacketPool::slot_of(handle) — never the raw generation-tagged handle,
// whose high bits would blow the table up) instead of growing the POD. The table only grows when the pool arena
// grows, so it inherits the pool's steady-state zero-allocation property.
//
// A packet's life is modeled as contiguous stage segments that partition
// [emitted, delivered]:
//
//   emit ──pacing──> wire-start ──serialization──> next hop
//        ──queueing──> tx-start ──serialization──> ... ──> delivered
//
// Each instrumentation site calls advance(h, t, stage), which charges
// `t - mark` to that stage and moves the mark to `t`. Because the mark
// never skips time, pacing + queueing + serialization == delivery_time -
// emitted *exactly*, in integer nanoseconds — the property bench_breakdown
// asserts to within 1 ns after per-message aggregation.
#pragma once

#include <cstdint>
#include <vector>

#include "util/units.h"

namespace silo::obs {

enum class Stage : std::uint8_t { kPacing, kQueueing, kSerialization };

struct PacketStages {
  TimeNs emitted {};  ///< transport handed the packet to the host
  TimeNs mark {};     ///< end of the last charged segment
  TimeNs pacing_ns {};
  TimeNs queue_ns {};
  TimeNs serial_ns {};
  bool retransmit = false;
  bool tracked = false;
};

class PacketTimeline {
 public:
  /// Start tracking a (re)used arena slot at emit time `now`.
  void on_emit(std::uint32_t h, TimeNs now, bool retransmit) {
    if (h >= stages_.size()) stages_.resize(h + 1);
    stages_[h] =
        PacketStages{now, now, TimeNs{0}, TimeNs{0}, TimeNs{0}, retransmit,
                     true};
  }

  /// Charge `now - mark` to `stage` and advance the mark. Handles the
  /// simulator never emitted through a transport (hand-built test
  /// packets, voids) are ignored.
  void advance(std::uint32_t h, TimeNs now, Stage stage) {
    if (h >= stages_.size() || !stages_[h].tracked) return;
    PacketStages& st = stages_[h];
    const TimeNs dt = now - st.mark;
    if (dt <= TimeNs{0}) return;
    switch (stage) {
      case Stage::kPacing:
        st.pacing_ns += dt;
        break;
      case Stage::kQueueing:
        st.queue_ns += dt;
        break;
      case Stage::kSerialization:
        st.serial_ns += dt;
        break;
    }
    st.mark = now;
  }

  /// Re-seed a slot from a snapshot taken in another arena. Cross-island
  /// handoff re-allocates the packet in the destination island's pool; the
  /// stage accounting accumulated so far travels with it so the breakdown
  /// identity (pacing + queueing + serialization == total) still holds.
  void restore(std::uint32_t h, const PacketStages& st) {
    if (h >= stages_.size()) stages_.resize(h + 1);
    stages_[h] = st;
  }

  bool tracked(std::uint32_t h) const {
    return h < stages_.size() && stages_[h].tracked;
  }

  const PacketStages& stages(std::uint32_t h) const {
    static const PacketStages kEmpty{};
    if (h >= stages_.size()) return kEmpty;
    return stages_[h];
  }

  std::size_t capacity() const { return stages_.size(); }

 private:
  std::vector<PacketStages> stages_;  ///< indexed by arena slot
};

}  // namespace silo::obs
