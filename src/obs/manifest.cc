#include "obs/manifest.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace silo::obs {

const char* git_describe() {
#ifdef SILO_GIT_DESCRIBE
  return SILO_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

namespace {

void append_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void append_double(std::ostream& os, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

}  // namespace

std::string manifest_json(const RunManifest& m,
                          const std::vector<MetricSample>& metrics) {
  std::ostringstream os;
  os << "{\n  \"manifest_version\": " << kManifestVersion << ",\n  \"bench\": ";
  append_escaped(os, m.bench);
  os << ",\n  \"git_describe\": ";
  append_escaped(os, m.git);
  os << ",\n  \"seed\": " << m.seed << ",\n  \"topology\": {";
  for (std::size_t i = 0; i < m.topology.size(); ++i) {
    os << (i ? ", " : "");
    append_escaped(os, m.topology[i].first);
    os << ": " << m.topology[i].second;
  }
  os << "},\n  \"params\": {";
  for (std::size_t i = 0; i < m.params.size(); ++i) {
    os << (i ? ", " : "");
    append_escaped(os, m.params[i].first);
    os << ": ";
    append_escaped(os, m.params[i].second);
  }
  os << "},\n  \"metrics\": [";
  bool first = true;
  for (const MetricSample& s : metrics) {
    os << (first ? "" : ",") << "\n    {\"name\": ";
    first = false;
    append_escaped(os, s.name);
    os << ", \"type\": \"" << metric_type_name(s.type) << "\", \"unit\": ";
    append_escaped(os, s.unit);
    os << ", \"owner\": ";
    append_escaped(os, s.owner);
    if (s.type == MetricType::kHistogram && s.hist) {
      os << ", \"count\": " << s.hist->count << ", \"sum\": ";
      append_double(os, s.hist->sum);
      os << ", \"bounds\": [";
      for (std::size_t i = 0; i < s.hist->bounds.size(); ++i) {
        os << (i ? "," : "");
        append_double(os, s.hist->bounds[i]);
      }
      os << "], \"counts\": [";
      for (std::size_t i = 0; i < s.hist->counts.size(); ++i)
        os << (i ? "," : "") << s.hist->counts[i];
      os << "]";
    } else {
      os << ", \"value\": " << s.value;
    }
    os << "}";
  }
  if (!first) os << "\n  ";
  os << "]\n}\n";
  return os.str();
}

std::string manifest_json(const RunManifest& m, const MetricsRegistry* metrics) {
  return manifest_json(m, metrics ? metrics->snapshot()
                                  : std::vector<MetricSample>{});
}

bool write_manifest(const std::string& path, const RunManifest& m,
                    const std::vector<MetricSample>& metrics) {
  std::ofstream f(path);
  if (!f) return false;
  f << manifest_json(m, metrics);
  return static_cast<bool>(f);
}

bool write_manifest(const std::string& path, const RunManifest& m,
                    const MetricsRegistry* metrics) {
  return write_manifest(path, m,
                        metrics ? metrics->snapshot()
                                : std::vector<MetricSample>{});
}

}  // namespace silo::obs
