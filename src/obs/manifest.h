// Versioned run manifest: the machine-readable record a bench writes via
// --metrics-json. Captures enough to re-run and to trust a number pulled
// from CI artifacts months later: bench name, seed, topology shape, the
// build's `git describe`, and a full metrics snapshot.
//
// Schema (manifest_version 1):
//   {
//     "manifest_version": 1,
//     "bench": "<binary name>",
//     "git_describe": "<git describe --always --dirty at configure time>",
//     "seed": <uint64>,
//     "topology": { "<key>": <int64>, ... },
//     "params":   { "<key>": "<string>", ... },
//     "metrics": [ { "name": ..., "type": ..., "unit": ..., "owner": ...,
//                    "value": <int64> }                       // counter/gauge
//                  { ..., "count": n, "sum": s,
//                    "bounds": [...], "counts": [...] }, ... ] // histogram
//   }
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace silo::obs {

inline constexpr int kManifestVersion = 1;

/// `git describe --always --dirty` captured at configure time, or
/// "unknown" when the build was configured outside a git checkout.
const char* git_describe();

struct RunManifest {
  std::string bench;
  std::uint64_t seed = 0;
  std::string git = git_describe();  ///< overridable for golden tests
  std::vector<std::pair<std::string, std::int64_t>> topology;
  std::vector<std::pair<std::string, std::string>> params;
};

/// Render from an already-taken snapshot — the form benches use when the
/// ClusterSim (and its registry) is gone by the time the manifest is
/// written. Samples own their histogram state, so this is always safe.
std::string manifest_json(const RunManifest& m,
                          const std::vector<MetricSample>& metrics);
std::string manifest_json(const RunManifest& m, const MetricsRegistry* metrics);

/// Renders and writes the manifest; returns false on I/O failure.
bool write_manifest(const std::string& path, const RunManifest& m,
                    const std::vector<MetricSample>& metrics);
bool write_manifest(const std::string& path, const RunManifest& m,
                    const MetricsRegistry* metrics);

}  // namespace silo::obs
