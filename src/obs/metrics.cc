#include "obs/metrics.h"

#include <stdexcept>

namespace silo::obs {

const char* metric_type_name(MetricType t) {
  switch (t) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

void MetricsRegistry::check_new_name(const std::string& name) const {
  if (name.empty()) throw std::invalid_argument("metric name must not be empty");
  for (const Def& d : defs_) {
    if (d.name == name)
      throw std::invalid_argument("duplicate metric name: " + name);
  }
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const std::string& unit,
                                 const std::string& owner) {
  check_new_name(name);
  cells_.push_back(0);
  defs_.push_back({name, unit, owner, MetricType::kCounter, &cells_.back(), nullptr});
  return Counter(&cells_.back());
}

Gauge MetricsRegistry::gauge(const std::string& name, const std::string& unit,
                             const std::string& owner) {
  check_new_name(name);
  cells_.push_back(0);
  defs_.push_back({name, unit, owner, MetricType::kGauge, &cells_.back(), nullptr});
  return Gauge(&cells_.back());
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     const std::string& unit,
                                     const std::string& owner,
                                     std::vector<double> bounds) {
  check_new_name(name);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1])
      throw std::invalid_argument("histogram bounds must be strictly increasing: " + name);
  }
  hists_.emplace_back();
  HistogramState& h = hists_.back();
  h.bounds = std::move(bounds);
  h.counts.assign(h.bounds.size() + 1, 0);
  defs_.push_back({name, unit, owner, MetricType::kHistogram, nullptr, &h});
  return Histogram(&h);
}

std::vector<MetricSample> MetricsRegistry::snapshot() const {
  std::vector<MetricSample> out;
  out.reserve(defs_.size());
  for (const Def& d : defs_) {
    MetricSample s;
    s.name = d.name;
    s.type = d.type;
    s.unit = d.unit;
    s.owner = d.owner;
    if (d.cell) s.value = *d.cell;
    if (d.hist) s.hist = *d.hist;  // copied: samples outlive the registry
    out.push_back(std::move(s));
  }
  return out;
}

std::int64_t MetricsRegistry::value(const std::string& name) const {
  for (const Def& d : defs_) {
    if (d.name == name) {
      if (!d.cell)
        throw std::invalid_argument("metric is a histogram, use snapshot(): " + name);
      return *d.cell;
    }
  }
  throw std::invalid_argument("unknown metric: " + name);
}

bool MetricsRegistry::has(const std::string& name) const {
  for (const Def& d : defs_)
    if (d.name == name) return true;
  return false;
}

}  // namespace silo::obs
