#include "netcalc/curve.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>

namespace silo::netcalc {
namespace {

constexpr double kSlopeTol = 1e-12;  // bytes/ns
// Breakpoints live on integer nanoseconds, so a crossover can be off by up
// to half a tick; at 100 Gbps that is ~6 bytes of value. Continuity and
// non-negativity checks allow that much slack.
constexpr double kValueTol = 16.0;  // bytes

double bps_to_bytes_per_ns(RateBps bps) { return bps.bps() / 8e9; }

}  // namespace

Curve::Curve(std::vector<Segment> segments) : segments_(std::move(segments)) {
  validate();
}

void Curve::validate() const {
  if (segments_.empty()) return;
  if (segments_.front().start != TimeNs{0})
    throw std::invalid_argument("curve must start at t=0");
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const auto& s = segments_[i];
    if (s.value < -kValueTol || s.slope < -kSlopeTol)
      throw std::invalid_argument("curve must be non-negative/non-decreasing");
    if (i == 0) continue;
    const auto& prev = segments_[i - 1];
    if (s.start <= prev.start)
      throw std::invalid_argument("segment starts must increase");
    if (s.slope > prev.slope + kSlopeTol)
      throw std::invalid_argument("curve must be concave");
    const double expected =
        prev.value + prev.slope * static_cast<double>(s.start - prev.start);
    // Breakpoints are rounded to whole nanoseconds, so continuity can be
    // off by up to one tick's worth of the steeper slope.
    const double tol = kValueTol + prev.slope +
                       1e-9 * std::max(std::abs(expected), std::abs(s.value));
    if (std::abs(expected - s.value) > tol)
      throw std::invalid_argument("curve must be continuous");
  }
}

Curve Curve::token_bucket(RateBps bandwidth, Bytes burst) {
  return Curve({{TimeNs{0}, static_cast<double>(burst),
                 bps_to_bytes_per_ns(bandwidth)}});
}

Curve Curve::rate_limited_burst(RateBps bandwidth, Bytes burst,
                                RateBps burst_rate, Bytes mtu) {
  if (burst_rate < bandwidth)
    throw std::invalid_argument("burst_rate must be >= bandwidth");
  const double bmax = bps_to_bytes_per_ns(burst_rate);
  const double b = bps_to_bytes_per_ns(bandwidth);
  const double s = static_cast<double>(burst);
  const double m = static_cast<double>(mtu);
  // min(m + bmax*t, s + b*t)
  if (s <= m || burst_rate == bandwidth)
    return Curve({{TimeNs{0}, std::min(s, m), b}});
  const double cross = (s - m) / (bmax - b);
  const auto t = static_cast<TimeNs>(std::llround(cross));
  if (t <= TimeNs{0}) return Curve({{TimeNs{0}, s, b}});
  // Anchor the post-crossover piece on the min of both lines so the curve
  // never exceeds the token bucket despite integer-time rounding.
  const double at_cross = std::min(m + bmax * static_cast<double>(t),
                                   s + b * static_cast<double>(t));
  return Curve({{TimeNs{0}, m, bmax}, {t, at_cross, b}});
}

Curve Curve::constant_rate(RateBps rate) {
  return Curve({{TimeNs{0}, 0.0, bps_to_bytes_per_ns(rate)}});
}

double Curve::value(TimeNs t) const {
  if (t < TimeNs{0} || segments_.empty()) return 0.0;
  // Last segment whose start <= t.
  auto it = std::upper_bound(
      segments_.begin(), segments_.end(), t,
      [](TimeNs lhs, const Segment& seg) { return lhs < seg.start; });
  --it;
  return it->value + it->slope * static_cast<double>(t - it->start);
}

std::optional<TimeNs> Curve::time_to_reach(double bytes) const {
  if (bytes <= 0.0) return TimeNs{0};
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const auto& s = segments_[i];
    const bool last = (i + 1 == segments_.size());
    const double end_value =
        last ? std::numeric_limits<double>::infinity()
             : segments_[i + 1].value;
    if (bytes <= s.value) return s.start;
    if (bytes <= end_value + kValueTol) {
      if (s.slope <= kSlopeTol) {
        if (last) return std::nullopt;
        continue;
      }
      const double dt = (bytes - s.value) / s.slope;
      return s.start + static_cast<TimeNs>(std::ceil(dt - 1e-9));
    }
  }
  return std::nullopt;
}

double Curve::long_run_slope() const {
  return segments_.empty() ? 0.0 : segments_.back().slope;
}

double Curve::sustained_intercept() const {
  if (segments_.empty()) return 0.0;
  const auto& last = segments_.back();
  return last.value - last.slope * static_cast<double>(last.start);
}

Curve Curve::shifted_left(TimeNs delta) const {
  if (delta <= TimeNs{0} || is_zero()) return *this;
  std::vector<Segment> out;
  out.reserve(segments_.size());
  for (const auto& s : segments_) {
    if (s.start <= delta) {
      // Segment covering the new origin (keep overwriting until past it).
      out.clear();
      out.push_back({TimeNs{0}, value(delta), s.slope});
    } else {
      out.push_back({s.start - delta, s.value, s.slope});
    }
  }
  return Curve(std::move(out));
}

Curve Curve::plus(const Curve& other) const {
  if (is_zero()) return other;
  if (other.is_zero()) return *this;
  std::set<TimeNs> starts;
  for (const auto& s : segments_) starts.insert(s.start);
  for (const auto& s : other.segments_) starts.insert(s.start);
  std::vector<Segment> out;
  out.reserve(starts.size());
  for (TimeNs t : starts) {
    // Slope just after t is the sum of each curve's slope at t.
    auto slope_at = [](const std::vector<Segment>& segs, TimeNs when) {
      auto it = std::upper_bound(
          segs.begin(), segs.end(), when,
          [](TimeNs lhs, const Segment& seg) { return lhs < seg.start; });
      --it;
      return it->slope;
    };
    out.push_back({t, value(t) + other.value(t),
                   slope_at(segments_, t) + slope_at(other.segments_, t)});
  }
  return Curve(std::move(out));
}

Curve Curve::min_with(const Curve& other) const {
  if (is_zero() || other.is_zero()) return Curve{};
  std::set<TimeNs> candidates;
  for (const auto& s : segments_) candidates.insert(s.start);
  for (const auto& s : other.segments_) candidates.insert(s.start);
  // Pairwise segment intersections.
  auto seg_end = [](const std::vector<Segment>& segs, std::size_t i) {
    return i + 1 < segs.size() ? segs[i + 1].start
                               : TimeNs::max() / 4;
  };
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    for (std::size_t j = 0; j < other.segments_.size(); ++j) {
      const auto& a = segments_[i];
      const auto& b = other.segments_[j];
      const TimeNs lo = std::max(a.start, b.start);
      const TimeNs hi = std::min(seg_end(segments_, i),
                                 seg_end(other.segments_, j));
      if (lo >= hi) continue;
      const double va = a.value + a.slope * static_cast<double>(lo - a.start);
      const double vb = b.value + b.slope * static_cast<double>(lo - b.start);
      const double ds = a.slope - b.slope;
      if (std::abs(ds) < kSlopeTol) continue;
      const double cross = (vb - va) / ds;
      if (cross > 0.0) {
        const TimeNs tc = lo + static_cast<TimeNs>(std::llround(cross));
        if (tc > lo && tc < hi) candidates.insert(tc);
      }
    }
  }
  std::vector<TimeNs> times(candidates.begin(), candidates.end());
  std::vector<Segment> out;
  out.reserve(times.size());
  for (std::size_t i = 0; i < times.size(); ++i) {
    const TimeNs t = times[i];
    const double v = std::min(value(t), other.value(t));
    double slope;
    if (i + 1 < times.size()) {
      const TimeNs tn = times[i + 1];
      const double vn = std::min(value(tn), other.value(tn));
      slope = (vn - v) / static_cast<double>(tn - t);
    } else {
      // Beyond the last candidate there are no more crossings: follow the
      // curve that is (or becomes) the minimum.
      const double sa = segments_.back().slope;
      const double sb = other.segments_.back().slope;
      slope = std::min(sa, sb);
    }
    if (!out.empty() && std::abs(out.back().slope - slope) < kSlopeTol)
      continue;  // merge collinear pieces
    out.push_back({t, v, slope});
  }
  return Curve(std::move(out));
}

Curve Curve::scaled(double k) const {
  if (k < 0.0) throw std::invalid_argument("negative scale");
  if (k == 0.0 || is_zero()) return Curve{};
  std::vector<Segment> out = segments_;
  for (auto& s : out) {
    s.value *= k;
    s.slope *= k;
  }
  return Curve(std::move(out));
}

std::string Curve::to_string() const {
  std::ostringstream os;
  os << "Curve[";
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const auto& s = segments_[i];
    if (i) os << ", ";
    os << "(t=" << s.start << "ns, v=" << s.value << "B, m=" << s.slope * 8e9
       << "bps)";
  }
  os << "]";
  return os.str();
}

QueueAnalysis analyze_queue(const Curve& arrival, const Curve& service) {
  QueueAnalysis res;
  if (arrival.is_zero()) {
    res.queue_bound = TimeNs{0};
    res.backlog_bound = 0.0;
    res.busy_period = TimeNs{0};
    return res;
  }
  if (service.is_zero()) return res;  // nothing is served: unbounded
  const double ar = arrival.long_run_slope();
  const double sr = service.long_run_slope();
  if (ar > sr + kSlopeTol) return res;  // overload: all bounds infinite

  // Horizontal deviation: with a concave arrival curve and a (piecewise-
  // linear, concave) service curve the deviation t -> S^{-1}(A(t)) - t is
  // maximized at a breakpoint of either curve.
  std::set<TimeNs> candidates;
  for (const auto& s : arrival.segments()) candidates.insert(s.start);
  for (const auto& s : service.segments())
    if (auto t = arrival.time_to_reach(s.value)) candidates.insert(*t);
  TimeNs worst_delay{};
  double worst_backlog = 0.0;
  bool delay_bounded = true;
  for (TimeNs t : candidates) {
    const double a = arrival.value(t);
    const auto caught = service.time_to_reach(a);
    if (!caught) {
      delay_bounded = false;
      break;
    }
    worst_delay = std::max(worst_delay, *caught - t);
    worst_backlog = std::max(worst_backlog, a - service.value(t));
  }
  // Vertical deviation can also peak at service breakpoints.
  for (const auto& s : service.segments())
    worst_backlog =
        std::max(worst_backlog, arrival.value(s.start) - s.value);
  if (delay_bounded) res.queue_bound = worst_delay;
  res.backlog_bound = std::max(0.0, worst_backlog);

  // Busy period p: earliest t with S(t) >= A(t) (t > 0). Scan arrival
  // segments for the crossing against the service curve.
  const auto& segs = arrival.segments();
  for (std::size_t i = 0; i < segs.size(); ++i) {
    const auto& a = segs[i];
    const TimeNs end = i + 1 < segs.size()
                           ? segs[i + 1].start
                           : TimeNs::max() / 4;
    // Service is constant-rate in practice; handle general piecewise by
    // sampling its breakpoints within [a.start, end) plus the analytic
    // crossing against each service segment.
    for (const auto& sv : service.segments()) {
      const double ds = sv.slope - a.slope;
      if (ds <= kSlopeTol) continue;
      // Solve sv.value + sv.slope*(t - sv.start) = a.value + a.slope*(t - a.start)
      const double num = (a.value - a.slope * static_cast<double>(a.start)) -
                         (sv.value - sv.slope * static_cast<double>(sv.start));
      const double t = num / ds;
      const auto tc = static_cast<TimeNs>(std::ceil(t - 1e-9));
      if (tc >= a.start && tc < end && tc >= sv.start &&
          service.value(tc) + kValueTol >= arrival.value(tc)) {
        if (!res.busy_period || tc < *res.busy_period) res.busy_period = tc;
      }
    }
  }
  return res;
}

Curve tenant_cut_curve(int n_vms, int m_side, RateBps bandwidth, Bytes burst,
                       RateBps burst_rate, RateBps line_rate_cap, Bytes mtu) {
  if (n_vms < 2 || m_side < 1 || m_side >= n_vms)
    throw std::invalid_argument("tenant_cut_curve: need 1 <= m < n, n >= 2");
  const RateBps sustained_raw =
      static_cast<double>(std::min(m_side, n_vms - m_side)) * bandwidth;
  const RateBps sustained = std::min(sustained_raw, line_rate_cap);
  const Bytes total_burst = burst * m_side;
  const RateBps brate = std::max(
      sustained,
      std::min(static_cast<double>(m_side) * burst_rate, line_rate_cap));
  return Curve::rate_limited_burst(sustained, total_burst, brate, mtu);
}

Curve propagate_through_port(const Curve& ingress, TimeNs queue_capacity,
                             RateBps line_rate, Bytes mtu) {
  // Output over any window [t, t+tau] is bounded by arrivals over
  // [t - c, t + tau], i.e. by A(tau + c): shift the curve left by the
  // port's queue capacity. (The line rate and MTU need no extra handling:
  // the shifted curve is already a valid, conservative bound.)
  (void)line_rate;
  (void)mtu;
  return ingress.shifted_left(queue_capacity);
}

RateLatency concatenate(const std::vector<RateLatency>& path) {
  if (path.empty()) throw std::invalid_argument("empty service path");
  RateLatency out{path.front().rate, TimeNs{0}};
  for (const auto& hop : path) {
    if (hop.rate <= RateBps{0}) throw std::invalid_argument("non-positive hop rate");
    out.rate = std::min(out.rate, hop.rate);
    out.latency += hop.latency;
  }
  return out;
}

std::optional<TimeNs> end_to_end_delay_bound(const Curve& arrival,
                                             const RateLatency& service) {
  if (arrival.is_zero()) return service.latency;
  const auto q =
      analyze_queue(arrival, Curve::constant_rate(service.rate));
  if (!q.queue_bound) return std::nullopt;
  return service.latency + *q.queue_bound;
}

}  // namespace silo::netcalc
