// Piecewise-linear network calculus (Cruz, Kurose, Le Boudec & Thiran).
//
// Arrival curves bound the traffic a source can emit over any interval;
// service curves bound what a switch port serves. Silo's placement reduces
// tenant guarantees to two constraints on these curves at every port
// (§4.2.2 of the paper):
//   1. queue bound (max horizontal deviation)  <=  queue capacity
//   2. sum of queue capacities along a path    <=  delay guarantee
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "util/units.h"

namespace silo::netcalc {

/// A non-decreasing, concave, piecewise-linear function of time (ns),
/// valued in bytes. Concavity is the natural shape of arrival curves built
/// from minima of token buckets, and it is preserved by the operations we
/// need (sum, min, shift); the constructor enforces it.
class Curve {
 public:
  struct Segment {
    TimeNs start;        ///< segment begins at this time (first is 0)
    double value;        ///< curve value at `start`, bytes
    double slope;        ///< bytes per ns on [start, next.start)
  };

  Curve() = default;  ///< the zero curve

  /// Build from segments; they must start at t=0, have increasing start
  /// times, non-increasing slopes (concavity) and continuous values.
  /// Throws std::invalid_argument otherwise.
  explicit Curve(std::vector<Segment> segments);

  /// Token bucket A(t) = S + B*t (the paper's A_{B,S}); `burst` is released
  /// instantaneously at t=0.
  static Curve token_bucket(RateBps bandwidth, Bytes burst);

  /// The paper's A'(t): burst drains at Bmax, not instantaneously —
  /// A'(t) = min(mtu + Bmax*t, S + B*t). Requires burst_rate >= bandwidth.
  static Curve rate_limited_burst(RateBps bandwidth, Bytes burst,
                                  RateBps burst_rate, Bytes mtu = kMtu);

  /// Constant-rate service curve S(t) = C*t (a work-conserving port).
  static Curve constant_rate(RateBps rate);

  bool is_zero() const { return segments_.empty(); }
  const std::vector<Segment>& segments() const { return segments_; }

  /// Curve value at time t (t < 0 yields 0).
  double value(TimeNs t) const;

  /// Earliest time at which the curve reaches `bytes`; nullopt if it never
  /// does (long-run slope too small).
  std::optional<TimeNs> time_to_reach(double bytes) const;

  /// Long-run slope (bytes/ns) — the sustained rate of the source.
  double long_run_slope() const;

  /// Initial burst A(0+), bytes.
  double burst() const { return segments_.empty() ? 0.0 : segments_[0].value; }

  /// y-intercept of the final (sustained-rate) segment: the classic
  /// token-bucket burst parameter S of the curve's long-run bound.
  double sustained_intercept() const;

  /// A'(t) = A(t + delta): the arrival curve of traffic after it may have
  /// been held up to `delta` inside a queue (Kurose propagation).
  Curve shifted_left(TimeNs delta) const;

  /// Pointwise sum (aggregating independent sources at a port).
  Curve plus(const Curve& other) const;

  /// Pointwise minimum (tightening a bound). Both operands concave.
  Curve min_with(const Curve& other) const;

  /// Scale values by a constant factor k >= 0 (k identical sources).
  Curve scaled(double k) const;

  std::string to_string() const;

 private:
  void validate() const;
  std::vector<Segment> segments_;  // empty == zero curve
};

/// Result of comparing an aggregate arrival curve with a port's service.
struct QueueAnalysis {
  /// Max horizontal deviation: worst packet queuing delay at the port.
  /// nullopt if unbounded (arrival rate exceeds service rate).
  std::optional<TimeNs> queue_bound;
  /// Max vertical deviation: worst backlog in bytes.
  /// nullopt if unbounded.
  std::optional<double> backlog_bound;
  /// The `p` value of Fig. 6: earliest time by which the queue must have
  /// emptied at least once (service has caught up with all arrivals).
  /// nullopt if the curves never meet.
  std::optional<TimeNs> busy_period;
};

/// Analyze a FIFO port: `arrival` is the sum of all traffic traversing it,
/// `service` its service curve (typically constant_rate(link_rate)).
QueueAnalysis analyze_queue(const Curve& arrival, const Curve& service);

/// Aggregate arrival curve for `m` of a tenant's `n` hose-model VMs sending
/// across a cut (§4.2.2 "Adding arrival curves"): sustained bandwidth is
/// destination-limited to min(m, n-m)*B, but bursts are not hose-limited,
/// so the burst is m*S drained at min(m*Bmax, cap) where `cap` is the line
/// rate bounding any physical burst.
Curve tenant_cut_curve(int n_vms, int m_side, RateBps bandwidth, Bytes burst,
                       RateBps burst_rate, RateBps line_rate_cap,
                       Bytes mtu = kMtu);

/// Arrival curve of traffic after it egresses a port with queue capacity
/// `queue_capacity` (ns) on a link of `line_rate` (§4.2.2 "Propagating
/// arrival curves", Kurose's bound loosened to the port's queue capacity):
/// the sustained rate is unchanged but every byte that can arrive within
/// the queue-capacity window may leave as one line-rate burst.
Curve propagate_through_port(const Curve& ingress, TimeNs queue_capacity,
                             RateBps line_rate, Bytes mtu = kMtu);

/// Rate-latency service curve beta_{R,T}(t) = R * max(0, t - T): the
/// standard abstraction of a switch port that serves a flow at rate R
/// after at most T of scheduling delay (Le Boudec & Thiran §1.3).
struct RateLatency {
  RateBps rate{};
  TimeNs latency{};
};

/// Min-plus concatenation of a path of rate-latency servers:
/// beta1 (x) beta2 = beta_{min(R1,R2), T1+T2}. The basis of the
/// "pay bursts only once" end-to-end bound — tighter than summing
/// per-hop worst cases, which Silo's placement uses for simplicity.
RateLatency concatenate(const std::vector<RateLatency>& path);

/// End-to-end delay bound for `arrival` over a (possibly concatenated)
/// rate-latency service: T + max horizontal deviation against rate R.
/// nullopt when the sustained arrival rate exceeds the service rate.
std::optional<TimeNs> end_to_end_delay_bound(const Curve& arrival,
                                             const RateLatency& service);

}  // namespace silo::netcalc
