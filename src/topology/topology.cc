#include "topology/topology.h"

namespace silo::topology {
namespace {

TimeNs queue_capacity_for(Bytes buffer, RateBps rate, TimeNs override_ns) {
  if (override_ns > TimeNs{0}) return override_ns;
  return transmission_time(buffer, rate);
}

}  // namespace

Topology::Topology(const TopologyConfig& cfg) : cfg_(cfg) {
  if (cfg.pods < 1 || cfg.racks_per_pod < 1 || cfg.servers_per_rack < 1 ||
      cfg.vm_slots_per_server < 1)
    throw std::invalid_argument("topology dimensions must be positive");
  if (cfg.oversubscription < 1.0)
    throw std::invalid_argument("oversubscription must be >= 1");

  rack_up_rate_ = cfg.server_link_rate *
                  static_cast<double>(cfg.servers_per_rack) /
                  cfg.oversubscription;
  pod_up_rate_ = rack_up_rate_ * static_cast<double>(cfg.racks_per_pod) /
                 cfg.oversubscription;

  const int servers = num_servers();
  const int racks = num_racks();
  const int pods = num_pods();

  server_up_base_ = 0;
  server_down_base_ = server_up_base_ + servers;
  rack_up_base_ = server_down_base_ + servers;
  rack_down_base_ = rack_up_base_ + racks;
  pod_up_base_ = rack_down_base_ + racks;
  pod_down_base_ = pod_up_base_ + pods;
  ports_.resize(pod_down_base_ + pods);

  auto make = [&](RateBps rate, int level) {
    return Port{rate, cfg.port_buffer,
                queue_capacity_for(cfg.port_buffer, rate,
                                   cfg.queue_capacity_override),
                level};
  };
  for (int s = 0; s < servers; ++s) {
    ports_[server_up_base_ + s] = make(cfg.server_link_rate, 0);
    ports_[server_down_base_ + s] = make(cfg.server_link_rate, 0);
  }
  for (int r = 0; r < racks; ++r) {
    ports_[rack_up_base_ + r] = make(rack_up_rate_, 1);
    ports_[rack_down_base_ + r] = make(rack_up_rate_, 1);
  }
  for (int p = 0; p < pods; ++p) {
    ports_[pod_up_base_ + p] = make(pod_up_rate_, 2);
    ports_[pod_down_base_ + p] = make(pod_up_rate_, 2);
  }
}

PortId Topology::server_up(int server) const {
  check_server(server);
  return {server_up_base_ + server};
}

PortId Topology::server_down(int server) const {
  check_server(server);
  return {server_down_base_ + server};
}

PortId Topology::rack_up(int rack) const {
  if (rack < 0 || rack >= num_racks()) throw std::out_of_range("rack index");
  return {rack_up_base_ + rack};
}

PortId Topology::rack_down(int rack) const {
  if (rack < 0 || rack >= num_racks()) throw std::out_of_range("rack index");
  return {rack_down_base_ + rack};
}

PortId Topology::pod_up(int pod) const {
  if (pod < 0 || pod >= num_pods()) throw std::out_of_range("pod index");
  return {pod_up_base_ + pod};
}

PortId Topology::pod_down(int pod) const {
  if (pod < 0 || pod >= num_pods()) throw std::out_of_range("pod index");
  return {pod_down_base_ + pod};
}

PortSpan Topology::path_span(int src_server, int dst_server) const {
  check_server(src_server);
  check_server(dst_server);
  PortSpan out;
  if (src_server == dst_server) return out;
  const int src_rack = rack_of_server(src_server);
  const int dst_rack = rack_of_server(dst_server);
  out.push(server_up(src_server));
  if (src_rack != dst_rack) {
    out.push(rack_up(src_rack));
    const int src_pod = pod_of_rack(src_rack);
    const int dst_pod = pod_of_rack(dst_rack);
    if (src_pod != dst_pod) {
      out.push(pod_up(src_pod));
      out.push(pod_down(dst_pod));
    }
    out.push(rack_down(dst_rack));
  }
  out.push(server_down(dst_server));
  return out;
}

std::vector<PortId> Topology::path(int src_server, int dst_server) const {
  const PortSpan span = path_span(src_server, dst_server);
  return {span.begin(), span.end()};
}

std::vector<PortId> Topology::switch_path(int src_server,
                                          int dst_server) const {
  auto out = path(src_server, dst_server);
  if (!out.empty()) out.erase(out.begin());  // drop the source NIC egress
  return out;
}

TimeNs Topology::path_queue_capacity(int src_server, int dst_server) const {
  TimeNs total {};
  for (PortId p : switch_path(src_server, dst_server))
    total += port(p).queue_capacity;
  return total;
}

}  // namespace silo::topology
