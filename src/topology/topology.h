// Multi-rooted tree datacenter topology (pods -> racks -> servers -> VM
// slots), modeled as a single logical tree whose inter-switch links
// aggregate the parallel paths of the physical multi-rooted fabric — the
// standard modeling assumption of Oktopus-style placement work.
//
// Every *egress queue* in the fabric is a Port with a line rate, a packet
// buffer, and the derived queue capacity (the paper's "maximum possible
// queue delay before packets are dropped", e.g. 100 KB at 10 Gbps = 80 us).
#pragma once

#include <array>
#include <stdexcept>
#include <vector>

#include "util/units.h"

namespace silo::topology {

struct TopologyConfig {
  int pods = 2;
  int racks_per_pod = 5;
  int servers_per_rack = 40;
  int vm_slots_per_server = 8;
  RateBps server_link_rate = 10 * kGbps;
  /// Oversubscription at each aggregation level (1.0 = full bisection,
  /// 5.0 = the paper's 1:5).
  double oversubscription = 5.0;
  /// Per-port packet buffer (the paper models shallow-buffered ToRs with
  /// 312 KB per port).
  Bytes port_buffer = 312 * kKB;
  /// Optional cap on queue capacity (ns); 0 means "derive from buffer".
  /// The paper notes capacity "can be set to a lower value too".
  TimeNs queue_capacity_override {};
};

/// A directed egress queue in the fabric.
struct Port {
  RateBps rate {};
  Bytes buffer {};
  TimeNs queue_capacity {};  ///< time to drain a full buffer at line rate
  int level = 0;              ///< 0 = server NIC / ToR-to-server, 1 = rack, 2 = pod
};

struct PortId {
  int value = -1;
  friend bool operator==(PortId a, PortId b) { return a.value == b.value; }
};

/// Allocation-free port sequence of one server-to-server path. The longest
/// possible path (inter-pod) crosses six egress queues: src NIC, ToR up,
/// pod up, core down, ToR down, dst link — so a fixed array covers every
/// case and high-rate callers (the flow-level simulator materializes one
/// span per flow) never touch the heap.
struct PortSpan {
  static constexpr int kMaxPorts = 6;
  std::array<PortId, kMaxPorts> port {};
  int size = 0;

  const PortId* begin() const { return port.data(); }
  const PortId* end() const { return port.data() + size; }
  bool empty() const { return size == 0; }
  void push(PortId id) { port[static_cast<std::size_t>(size++)] = id; }
};

class Topology {
 public:
  explicit Topology(const TopologyConfig& cfg);

  const TopologyConfig& config() const { return cfg_; }
  int num_pods() const { return cfg_.pods; }
  int num_racks() const { return cfg_.pods * cfg_.racks_per_pod; }
  int num_servers() const { return num_racks() * cfg_.servers_per_rack; }
  int total_vm_slots() const {
    return num_servers() * cfg_.vm_slots_per_server;
  }
  int num_ports() const { return static_cast<int>(ports_.size()); }

  int rack_of_server(int server) const {
    return server / cfg_.servers_per_rack;
  }
  int pod_of_rack(int rack) const { return rack / cfg_.racks_per_pod; }
  int pod_of_server(int server) const {
    return pod_of_rack(rack_of_server(server));
  }
  int first_server_of_rack(int rack) const {
    return rack * cfg_.servers_per_rack;
  }
  int first_rack_of_pod(int pod) const { return pod * cfg_.racks_per_pod; }

  const Port& port(PortId id) const { return ports_.at(id.value); }

  /// True when the port is a server NIC egress (a pacing conformance
  /// point rather than a switch queue).
  bool is_nic_port(PortId id) const {
    return id.value >= server_up_base_ &&
           id.value < server_up_base_ + num_servers();
  }

  // Directed egress ports. "up" points toward the core, "down" away.
  PortId server_up(int server) const;    ///< server NIC egress -> ToR
  PortId server_down(int server) const;  ///< ToR egress -> server
  PortId rack_up(int rack) const;        ///< ToR egress -> pod switch
  PortId rack_down(int rack) const;      ///< pod switch egress -> ToR
  PortId pod_up(int pod) const;          ///< pod switch egress -> core
  PortId pod_down(int pod) const;        ///< core egress -> pod switch

  /// Ordered list of egress ports a packet traverses from src to dst
  /// server, starting with the source NIC egress (empty when src == dst:
  /// intra-server traffic never touches the fabric).
  std::vector<PortId> path(int src_server, int dst_server) const;

  /// Same ordered ports as path(), as a fixed-size span: no allocation, so
  /// per-flow path materialization is a handful of integer ops.
  PortSpan path_span(int src_server, int dst_server) const;

  /// Same path without the source NIC egress: only *switch* queues. The
  /// NIC is a pacing conformance point — traffic on the wire already
  /// matches its arrival curve — so delay-bound accounting starts at the
  /// first switch.
  std::vector<PortId> switch_path(int src_server, int dst_server) const;

  /// Sum of switch queue capacities along the path — the conservative
  /// per-path delay bound Silo's placement checks against the guarantee.
  TimeNs path_queue_capacity(int src_server, int dst_server) const;

  RateBps rack_uplink_rate() const { return rack_up_rate_; }
  RateBps pod_uplink_rate() const { return pod_up_rate_; }

 private:
  void check_server(int server) const {
    if (server < 0 || server >= num_servers())
      throw std::out_of_range("server index");
  }

  TopologyConfig cfg_;
  RateBps rack_up_rate_ {};
  RateBps pod_up_rate_ {};
  std::vector<Port> ports_;
  // Port layout offsets.
  int server_up_base_ = 0, server_down_base_ = 0, rack_up_base_ = 0,
      rack_down_base_ = 0, pod_up_base_ = 0, pod_down_base_ = 0;
};

}  // namespace silo::topology
