// Communication patterns used across the paper's evaluation: all-to-one
// (OLDI partition-aggregate), all-to-all (shuffle), and Permutation-x.
#pragma once

#include <utility>
#include <vector>

#include "util/rng.h"

namespace silo::workload {

using Pair = std::pair<int, int>;  ///< (src VM, dst VM), tenant-local ids

/// Every VM except `receiver` sends to `receiver`.
std::vector<Pair> all_to_one(int n_vms, int receiver = 0);

/// Every ordered pair (i, j), i != j.
std::vector<Pair> all_to_all(int n_vms);

/// Each VM gets flows to x randomly chosen other VMs (§6.3): fractional x
/// means only that fraction of VMs send; x = n-1 reduces to all-to-all.
std::vector<Pair> permutation(int n_vms, double x, Rng& rng);

}  // namespace silo::workload
