#include "workload/drivers.h"

#include <algorithm>
#include <cstdlib>

namespace silo::workload {

void BreakdownAgg::add(const sim::ClusterSim::MessageResult& r) {
  const auto& b = r.breakdown;
  const auto us = [](TimeNs ns) {
    return static_cast<double>(ns) / static_cast<double>(kUsec);
  };
  pacing_us.add(us(b.pacing_ns));
  queueing_us.add(us(b.queueing_ns));
  serialization_us.add(us(b.serialization_ns));
  retransmit_us.add(us(b.retransmit_ns));
  max_sum_error_ns = std::max(
      max_sum_error_ns, TimeNs{std::abs((b.sum() - r.latency).count())});
  ++messages;
}

TimeNs retry_delay(const RetryPolicy& p, int attempt, Rng& rng) {
  TimeNs backoff = p.base_backoff;
  for (int i = 1; i < attempt && backoff < p.max_backoff; ++i)
    backoff = backoff * 2;
  backoff = std::min(backoff, p.max_backoff);
  // Full +/- jitter decorrelates retry storms after a shared fault.
  const double factor = 1.0 + p.jitter * (2.0 * rng.uniform() - 1.0);
  return std::max(TimeNs{1},
                  TimeNs{static_cast<std::int64_t>(
                      static_cast<double>(backoff) * factor)});
}

// ---------------------------------------------------------------- EtcDriver

EtcDriver::EtcDriver(sim::ClusterSim& cluster, int tenant, int server_vm,
                     std::vector<int> client_vms, Config cfg,
                     std::uint64_t seed)
    : cluster_(cluster),
      tenant_(tenant),
      server_vm_(server_vm),
      client_vms_(std::move(client_vms)),
      cfg_(cfg),
      rng_(seed) {}

Bytes EtcDriver::sample_value_size() {
  const double v =
      rng_.generalized_pareto(cfg_.value_mu, cfg_.value_sigma, cfg_.value_xi);
  return std::clamp(static_cast<Bytes>(v), cfg_.min_value, cfg_.max_value);
}

void EtcDriver::start(TimeNs until) {
  until_ = until;
  schedule_next();
}

void EtcDriver::schedule_next() {
  const double gap_s = rng_.exponential(1.0 / cfg_.ops_per_sec);
  const TimeNs t = cluster_.tenant_events(tenant_).now() +
                   static_cast<TimeNs>(gap_s * static_cast<double>(kSec));
  if (t > until_) return;
  // Arrivals ride typed raw events; the per-transaction response chain below
  // stays on std::function callbacks (cold, message-granularity).
  cluster_.tenant_events(tenant_).raw_at(
      t, [](void* self, std::uint32_t) { static_cast<EtcDriver*>(self)->on_arrival(); },
      this);
}

void EtcDriver::on_arrival() {
  const auto client = client_vms_[static_cast<std::size_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(client_vms_.size()) - 1))];
  const Bytes value = sample_value_size();
  ++issued_;
  send_request(client, value, cluster_.tenant_events(tenant_).now(), 1);
  schedule_next();
}

// GET: request to the cache server; on arrival the server replies with
// the value; transaction latency is request-send -> response-delivered.
// Either leg may be aborted by the transport under faults; the client
// retries the whole transaction (request leg) or the server re-sends the
// response, both after jittered backoff.
void EtcDriver::send_request(int client, Bytes value, TimeNs sent,
                             int attempt) {
  cluster_.send_message(
      tenant_, client, server_vm_, cfg_.request_size,
      [this, client, value, sent,
       attempt](const sim::ClusterSim::MessageResult& r) {
        if (r.aborted) {
          ++aborted_;
          if (!retry_.enabled || attempt >= retry_.max_attempts) {
            ++abandoned_;
            return;
          }
          ++retried_;
          cluster_.tenant_events(tenant_).after(
              retry_delay(retry_, attempt, rng_), [this, client, value, sent,
                                                   attempt] {
                send_request(client, value, sent, attempt + 1);
              });
          return;
        }
        breakdown_.add(r);
        const auto think = static_cast<TimeNs>(rng_.exponential(
            static_cast<double>(cfg_.server_processing_mean)));
        cluster_.tenant_events(tenant_).after(think, [this, client, value, sent] {
          send_response(client, value, sent, 1);
        });
      });
}

void EtcDriver::send_response(int client, Bytes value, TimeNs sent,
                              int attempt) {
  cluster_.send_message(
      tenant_, server_vm_, client, value,
      [this, client, value, sent,
       attempt](const sim::ClusterSim::MessageResult& r) {
        if (r.aborted) {
          ++aborted_;
          if (!retry_.enabled || attempt >= retry_.max_attempts) {
            ++abandoned_;
            return;
          }
          ++retried_;
          cluster_.tenant_events(tenant_).after(
              retry_delay(retry_, attempt, rng_), [this, client, value, sent,
                                                   attempt] {
                send_response(client, value, sent, attempt + 1);
              });
          return;
        }
        ++completed_;
        breakdown_.add(r);
        latencies_us_.add(static_cast<double>(cluster_.tenant_events(tenant_).now() - sent) /
                          static_cast<double>(kUsec));
      });
}

// --------------------------------------------------------------- BulkDriver

BulkDriver::BulkDriver(sim::ClusterSim& cluster, int tenant,
                       std::vector<Pair> pairs, Bytes chunk, std::uint64_t seed)
    : cluster_(cluster), tenant_(tenant), pairs_(std::move(pairs)),
      chunk_(chunk), rng_(seed) {}

void BulkDriver::start(TimeNs until) {
  until_ = until;
  started_ = cluster_.tenant_events(tenant_).now();
  for (std::size_t i = 0; i < pairs_.size(); ++i) pump(i, 1);
}

void BulkDriver::pump(std::size_t pair_idx, int attempt) {
  // Fresh chunks stop at the cutoff; a retried chunk (attempt > 1) is
  // driven to completion regardless, so faulted transfers finish.
  if (attempt == 1 && cluster_.tenant_events(tenant_).now() >= until_) return;
  const auto [src, dst] = pairs_[pair_idx];
  cluster_.send_message(
      tenant_, src, dst, chunk_,
      [this, pair_idx, attempt](const sim::ClusterSim::MessageResult& r) {
        if (r.aborted) {
          ++aborted_;
          if (!retry_.enabled || attempt >= retry_.max_attempts) {
            ++abandoned_;
            pump(pair_idx, 1);  // abandon this chunk, move on
            return;
          }
          ++retried_;
          cluster_.tenant_events(tenant_).after(retry_delay(retry_, attempt, rng_),
                                  [this, pair_idx, attempt] {
                                    pump(pair_idx, attempt + 1);
                                  });
          return;
        }
        ++completed_;
        breakdown_.add(r);
        chunk_latencies_us_.add(static_cast<double>(r.latency) /
                                static_cast<double>(kUsec));
        pump(pair_idx, 1);
      });
}

double BulkDriver::goodput_bps() const {
  std::int64_t bytes = 0;
  for (const auto& [src, dst] : pairs_)
    bytes += cluster_.pair_delivered_bytes(tenant_, src, dst);
  const TimeNs elapsed = cluster_.tenant_events(tenant_).now() - started_;
  if (elapsed <= TimeNs{0}) return 0.0;
  return static_cast<double>(bytes) * 8e9 / static_cast<double>(elapsed);
}

// -------------------------------------------------------------- BurstDriver

BurstDriver::BurstDriver(sim::ClusterSim& cluster, int tenant, int n_vms,
                         Config cfg, std::uint64_t seed)
    : cluster_(cluster), tenant_(tenant), n_vms_(n_vms), cfg_(cfg),
      rng_(seed) {}

void BurstDriver::start(TimeNs until) {
  until_ = until;
  schedule_next();
}

void BurstDriver::schedule_next() {
  const double gap_s = rng_.exponential(1.0 / cfg_.epochs_per_sec);
  const TimeNs t = cluster_.tenant_events(tenant_).now() +
                   static_cast<TimeNs>(gap_s * static_cast<double>(kSec));
  if (t > until_) return;
  cluster_.tenant_events(tenant_).raw_at(
      t, [](void* self, std::uint32_t) { static_cast<BurstDriver*>(self)->on_arrival(); },
      this);
}

void BurstDriver::on_arrival() {
  // Partition-aggregate: every worker responds to the aggregator at once.
  for (int v = 0; v < n_vms_; ++v) {
    if (v == cfg_.receiver) continue;
    ++issued_;
    send_one(v, cluster_.tenant_events(tenant_).now(), 1);
  }
  schedule_next();
}

void BurstDriver::send_one(int worker, TimeNs sent, int attempt) {
  cluster_.send_message(
      tenant_, worker, cfg_.receiver, cfg_.message_size,
      [this, worker, sent, attempt](const sim::ClusterSim::MessageResult& r) {
        if (r.aborted) {
          ++aborted_;
          if (!retry_.enabled || attempt >= retry_.max_attempts) {
            ++abandoned_;
            return;
          }
          ++retried_;
          cluster_.tenant_events(tenant_).after(
              retry_delay(retry_, attempt, rng_),
              [this, worker, sent, attempt] {
                send_one(worker, sent, attempt + 1);
              });
          return;
        }
        ++completed_;
        breakdown_.add(r);
        // Latency from the first issue, so retried messages surface as the
        // long tail they are rather than resetting the clock.
        latencies_us_.add(
            static_cast<double>(cluster_.tenant_events(tenant_).now() - sent) /
            static_cast<double>(kUsec));
        if (r.had_rto || attempt > 1) ++rto_messages_;
      });
}

// ----------------------------------------------------- PoissonMessageDriver

PoissonMessageDriver::PoissonMessageDriver(sim::ClusterSim& cluster,
                                           int tenant, int src, int dst,
                                           double msgs_per_sec, Bytes size,
                                           std::uint64_t seed)
    : cluster_(cluster), tenant_(tenant), src_(src), dst_(dst),
      rate_(msgs_per_sec), size_(size), rng_(seed) {}

void PoissonMessageDriver::start(TimeNs until) {
  until_ = until;
  schedule_next();
}

void PoissonMessageDriver::schedule_next() {
  const double gap_s = rng_.exponential(1.0 / rate_);
  const TimeNs t = cluster_.tenant_events(tenant_).now() +
                   static_cast<TimeNs>(gap_s * static_cast<double>(kSec));
  if (t > until_) return;
  cluster_.tenant_events(tenant_).raw_at(
      t,
      [](void* self, std::uint32_t) {
        static_cast<PoissonMessageDriver*>(self)->on_arrival();
      },
      this);
}

void PoissonMessageDriver::on_arrival() {
  ++issued_;
  send_one(cluster_.tenant_events(tenant_).now(), 1);
  schedule_next();
}

void PoissonMessageDriver::send_one(TimeNs sent, int attempt) {
  cluster_.send_message(
      tenant_, src_, dst_, size_,
      [this, sent, attempt](const sim::ClusterSim::MessageResult& r) {
        if (r.aborted) {
          ++aborted_;
          if (!retry_.enabled || attempt >= retry_.max_attempts) {
            ++abandoned_;
            return;
          }
          ++retried_;
          cluster_.tenant_events(tenant_).after(retry_delay(retry_, attempt, rng_),
                                  [this, sent, attempt] {
                                    send_one(sent, attempt + 1);
                                  });
          return;
        }
        ++completed_;
        breakdown_.add(r);
        latencies_us_.add(static_cast<double>(cluster_.tenant_events(tenant_).now() - sent) /
                          static_cast<double>(kUsec));
      });
}

}  // namespace silo::workload
