// Workload drivers that exercise ClusterSim with the paper's traffic:
//  - EtcDriver: memcached running Facebook's ETC workload (Fig 1, Fig 11)
//  - BulkDriver: netperf-style backlogged transfers (shuffle phase)
//  - BurstDriver: class-A OLDI tenants, synchronized all-to-one message
//    bursts at Poisson epochs (Fig 12-14)
//  - PoissonMessageDriver: single-pair Poisson messages (Table 1)
#pragma once

#include <functional>
#include <vector>

#include "sim/cluster.h"
#include "util/rng.h"
#include "util/stats.h"
#include "workload/patterns.h"

namespace silo::workload {

/// Retry policy for messages the transport aborts (bounded-retry
/// connection reset under faults). Disabled by default — the seed
/// configuration never aborts. Retries use exponential backoff with
/// uniform jitter, and deliberately ignore the driver's `until` cutoff:
/// an accepted request is driven to completion (or abandonment after
/// max_attempts) even after new load stops, which is what lets fault
/// tests prove "every message eventually completes".
struct RetryPolicy {
  bool enabled = false;
  int max_attempts = 6;  ///< total attempts per message, incl. the first
  TimeNs base_backoff = 2 * kMsec;  ///< doubled per failed attempt
  TimeNs max_backoff = 200 * kMsec;
  double jitter = 0.5;  ///< +/- fraction of the backoff, uniform
};

/// Backoff before attempt `attempt + 1` (attempt counts from 1).
TimeNs retry_delay(const RetryPolicy& p, int attempt, Rng& rng);

/// Where delivered-message latency went, aggregated over a driver's run:
/// one Stats series per MessageBreakdown component (us), plus the worst
/// |sum(components) - latency| seen (ns). The attribution layer guarantees
/// exact sums, so max_sum_error_ns staying at 0 is the invariant
/// bench_breakdown and test_obs assert.
struct BreakdownAgg {
  Stats pacing_us;
  Stats queueing_us;
  Stats serialization_us;
  Stats retransmit_us;
  TimeNs max_sum_error_ns {};
  std::int64_t messages = 0;

  void add(const sim::ClusterSim::MessageResult& r);
};

/// Facebook ETC-like key-value traffic (Atikoglu et al., SIGMETRICS 2012):
/// small fixed-size GET requests, generalized-Pareto value sizes. Latency
/// recorded per transaction: request sent -> response delivered.
class EtcDriver {
 public:
  struct Config {
    double ops_per_sec = 10'000;
    Bytes request_size {50};
    /// Generalized-Pareto value-size parameters from the ETC trace fit.
    double value_mu = 0.0;
    double value_sigma = 214.48;
    double value_xi = 0.348;
    Bytes max_value = 1 * kKB;   ///< the paper's observed max value size
    Bytes min_value {1};
    /// End-host stack + cache lookup time, exponential mean. The paper's
    /// testbed measures this inside transaction latency (its isolated p99
    /// of ~270 us is stack-dominated), so the driver models it; Silo's
    /// *network* guarantee of course excludes it.
    TimeNs server_processing_mean = 60 * kUsec;
  };

  EtcDriver(sim::ClusterSim& cluster, int tenant, int server_vm,
            std::vector<int> client_vms, Config cfg, std::uint64_t seed);

  /// Begin issuing transactions; stops scheduling new ones after `until`.
  void start(TimeNs until);

  void set_retry(const RetryPolicy& p) { retry_ = p; }

  const Stats& latencies_us() const { return latencies_us_; }
  /// Per-message latency attribution over both transaction legs.
  const BreakdownAgg& breakdown() const { return breakdown_; }
  std::int64_t completed_ops() const { return completed_; }
  std::int64_t issued_ops() const { return issued_; }
  std::int64_t aborted_messages() const { return aborted_; }
  std::int64_t retried_messages() const { return retried_; }
  std::int64_t abandoned_ops() const { return abandoned_; }

 private:
  void schedule_next();
  void on_arrival();
  void send_request(int client, Bytes value, TimeNs sent, int attempt);
  void send_response(int client, Bytes value, TimeNs sent, int attempt);
  Bytes sample_value_size();

  sim::ClusterSim& cluster_;
  int tenant_;
  int server_vm_;
  std::vector<int> client_vms_;
  Config cfg_;
  Rng rng_;
  RetryPolicy retry_;
  TimeNs until_ {};
  Stats latencies_us_;
  BreakdownAgg breakdown_;
  std::int64_t completed_ = 0;
  std::int64_t issued_ = 0;
  std::int64_t aborted_ = 0;
  std::int64_t retried_ = 0;
  std::int64_t abandoned_ = 0;
};

/// Backlogged bulk transfers over a set of VM pairs (netperf / shuffle):
/// closed-loop chunks keep every flow busy for the whole run.
class BulkDriver {
 public:
  BulkDriver(sim::ClusterSim& cluster, int tenant, std::vector<Pair> pairs,
             Bytes chunk = 256 * kKB, std::uint64_t seed = 1);

  void start(TimeNs until);

  void set_retry(const RetryPolicy& p) { retry_ = p; }

  /// Aggregate delivered goodput in bits/s over [start, now].
  double goodput_bps() const;

  /// Completion latency of each chunk-sized message (us).
  const Stats& chunk_latencies_us() const { return chunk_latencies_us_; }
  const BreakdownAgg& breakdown() const { return breakdown_; }
  Bytes chunk_size() const { return chunk_; }
  std::int64_t completed_chunks() const { return completed_; }
  std::int64_t aborted_messages() const { return aborted_; }
  std::int64_t retried_messages() const { return retried_; }
  std::int64_t abandoned_chunks() const { return abandoned_; }

 private:
  void pump(std::size_t pair_idx, int attempt);

  Stats chunk_latencies_us_;
  BreakdownAgg breakdown_;

  sim::ClusterSim& cluster_;
  int tenant_;
  std::vector<Pair> pairs_;
  Bytes chunk_;
  Rng rng_;
  RetryPolicy retry_;
  TimeNs until_ {};
  TimeNs started_ {};
  std::int64_t completed_ = 0;
  std::int64_t aborted_ = 0;
  std::int64_t retried_ = 0;
  std::int64_t abandoned_ = 0;
};

/// Class-A OLDI tenant: at Poisson epochs every worker VM simultaneously
/// sends an `message_size` response toward the aggregator (VM 0).
class BurstDriver {
 public:
  struct Config {
    double epochs_per_sec = 100;
    Bytes message_size = 15 * kKB;
    int receiver = 0;  ///< tenant-local VM id of the aggregator
  };

  BurstDriver(sim::ClusterSim& cluster, int tenant, int n_vms, Config cfg,
              std::uint64_t seed);

  void start(TimeNs until);

  void set_retry(const RetryPolicy& p) { retry_ = p; }

  const Stats& latencies_us() const { return latencies_us_; }
  const BreakdownAgg& breakdown() const { return breakdown_; }
  std::int64_t messages_with_rto() const { return rto_messages_; }
  std::int64_t completed_messages() const { return completed_; }
  std::int64_t issued_messages() const { return issued_; }
  std::int64_t aborted_messages() const { return aborted_; }
  std::int64_t retried_messages() const { return retried_; }
  std::int64_t abandoned_messages() const { return abandoned_; }

 private:
  void schedule_next();
  void on_arrival();
  void send_one(int worker, TimeNs sent, int attempt);

  sim::ClusterSim& cluster_;
  int tenant_;
  int n_vms_;
  Config cfg_;
  Rng rng_;
  RetryPolicy retry_;
  TimeNs until_ {};
  Stats latencies_us_;
  BreakdownAgg breakdown_;
  std::int64_t rto_messages_ = 0;
  std::int64_t completed_ = 0;
  std::int64_t issued_ = 0;
  std::int64_t aborted_ = 0;
  std::int64_t retried_ = 0;
  std::int64_t abandoned_ = 0;
};

/// Poisson-arrival fixed-size messages on one VM pair (Table 1).
class PoissonMessageDriver {
 public:
  PoissonMessageDriver(sim::ClusterSim& cluster, int tenant, int src, int dst,
                       double msgs_per_sec, Bytes size, std::uint64_t seed);

  void start(TimeNs until);

  void set_retry(const RetryPolicy& p) { retry_ = p; }

  const Stats& latencies_us() const { return latencies_us_; }
  const BreakdownAgg& breakdown() const { return breakdown_; }
  std::int64_t completed() const { return completed_; }
  std::int64_t issued() const { return issued_; }
  std::int64_t aborted_messages() const { return aborted_; }
  std::int64_t retried_messages() const { return retried_; }
  std::int64_t abandoned_messages() const { return abandoned_; }

 private:
  void schedule_next();
  void on_arrival();
  void send_one(TimeNs sent, int attempt);

  sim::ClusterSim& cluster_;
  int tenant_, src_, dst_;
  double rate_;
  Bytes size_;
  Rng rng_;
  RetryPolicy retry_;
  TimeNs until_ {};
  Stats latencies_us_;
  BreakdownAgg breakdown_;
  std::int64_t completed_ = 0;
  std::int64_t issued_ = 0;
  std::int64_t aborted_ = 0;
  std::int64_t retried_ = 0;
  std::int64_t abandoned_ = 0;
};

}  // namespace silo::workload
