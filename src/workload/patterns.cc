#include "workload/patterns.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace silo::workload {

std::vector<Pair> all_to_one(int n_vms, int receiver) {
  if (n_vms < 2) throw std::invalid_argument("all_to_one needs >= 2 VMs");
  std::vector<Pair> out;
  out.reserve(static_cast<std::size_t>(n_vms) - 1);
  for (int i = 0; i < n_vms; ++i)
    if (i != receiver) out.emplace_back(i, receiver);
  return out;
}

std::vector<Pair> all_to_all(int n_vms) {
  if (n_vms < 2) throw std::invalid_argument("all_to_all needs >= 2 VMs");
  std::vector<Pair> out;
  out.reserve(static_cast<std::size_t>(n_vms) * (n_vms - 1));
  for (int i = 0; i < n_vms; ++i)
    for (int j = 0; j < n_vms; ++j)
      if (i != j) out.emplace_back(i, j);
  return out;
}

std::vector<Pair> permutation(int n_vms, double x, Rng& rng) {
  if (n_vms < 2) throw std::invalid_argument("permutation needs >= 2 VMs");
  if (x <= 0) throw std::invalid_argument("permutation x must be positive");
  std::vector<Pair> out;
  const int per_vm = static_cast<int>(std::floor(x));
  const double frac = x - per_vm;
  for (int i = 0; i < n_vms; ++i) {
    int flows = std::min(per_vm, n_vms - 1);
    if (frac > 0 && rng.uniform() < frac && flows < n_vms - 1) ++flows;
    // Sample distinct destinations != i.
    std::vector<int> candidates;
    candidates.reserve(static_cast<std::size_t>(n_vms) - 1);
    for (int j = 0; j < n_vms; ++j)
      if (j != i) candidates.push_back(j);
    for (int f = 0; f < flows; ++f) {
      const auto pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(candidates.size()) - 1));
      out.emplace_back(i, candidates[pick]);
      candidates.erase(candidates.begin() + static_cast<std::ptrdiff_t>(pick));
    }
  }
  return out;
}

}  // namespace silo::workload
