// Telemetry walkthrough: watch a switch buffer absorb a synchronized
// OLDI burst, with and without Silo. Uses the FabricTracer to sample
// queue occupancy at 10 us resolution — the moment-to-moment view behind
// the paper's queue-bound arguments.
#include <cstdio>

#include "sim/trace.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

using namespace silo;
using namespace silo::sim;

namespace {

void run(Scheme scheme) {
  ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 6;
  cfg.topo.vm_slots_per_server = 4;
  cfg.topo.oversubscription = 1.0;
  cfg.scheme = scheme;
  ClusterSim sim(cfg);

  // OLDI tenant: 17 workers + 1 aggregator, synchronized 15 KB bursts.
  TenantRequest a;
  a.num_vms = 18;
  a.tenant_class = TenantClass::kDelaySensitive;
  a.guarantee = {250 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto ta = sim.add_tenant(a);
  // A bulk neighbour keeps the shared queues warm.
  TenantRequest b;
  b.num_vms = 6;
  b.tenant_class = TenantClass::kBandwidthOnly;
  b.guarantee = {1 * kGbps, Bytes{1500}, TimeNs{0}, 1 * kGbps};
  const auto tb = sim.add_tenant(b);
  if (!ta || !tb) {
    std::printf("%-7s: admission failed\n", scheme_name(scheme));
    return;
  }

  workload::BulkDriver bulk(sim, *tb, workload::all_to_all(6),
                            Bytes{128 * kKB});
  workload::BurstDriver::Config bc;
  bc.receiver = 17;
  bc.message_size = 15 * kKB;
  bc.epochs_per_sec = 50;
  workload::BurstDriver bursts(sim, *ta, 18, bc, 31);

  FabricTracer tracer(sim, 10 * kUsec);
  bulk.start(100 * kMsec);
  bursts.start(100 * kMsec);
  tracer.start(100 * kMsec);
  sim.run_until(120 * kMsec);

  const auto hot = tracer.hottest_ports(3);
  std::printf("%-7s: worst queue %6ld KB of %ld KB buffer; "
              "top ports:", scheme_name(scheme),
              static_cast<long>(tracer.max_queued_anywhere() / kKB),
              static_cast<long>(cfg.topo.port_buffer / kKB));
  for (const auto& [port, bytes] : hot)
    std::printf(" #%d=%ldKB", port, static_cast<long>(bytes / kKB));
  std::printf("  (burst p99 %.2f ms, drops %ld)\n",
              bursts.latencies_us().percentile(99) / 1e3,
              static_cast<long>(sim.fabric().total_drops()));
}

}  // namespace

int main() {
  std::printf(
      "Queue occupancy under synchronized 255 KB OLDI bursts + bulk load\n"
      "(312 KB shallow buffers; sampled every 10 us across every port)\n\n");
  for (auto scheme :
       {Scheme::kTcp, Scheme::kDctcp, Scheme::kSilo}) {
    run(scheme);
  }
  std::printf(
      "\nUnder TCP the bulk traffic parks the queue near the buffer limit,\n"
      "so each burst overflows it; Silo's placement guarantees the burst\n"
      "fits in the headroom its admission control reserved.\n");
  return 0;
}
