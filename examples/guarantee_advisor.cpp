// Choosing a guarantee: the paper expects tenants to pick {B, S, Bmax}
// with tools like Cicada (§4.1); Table 1 shows why the raw average
// bandwidth is a terrible choice for a bursty workload. This example
// profiles a synthetic OLDI-ish workload and asks the advisor for the
// cheapest guarantee that keeps 99.9% of messages within their bound.
#include <cstdio>

#include "core/advisor.h"
#include "util/rng.h"

using namespace silo;

int main() {
  // Observed workload: ~2000 messages/s, sizes bimodal — mostly small
  // responses with occasional 40 KB result pages.
  Rng rng(17);
  WorkloadProfile profile;
  profile.messages_per_sec = 2000;
  profile.packet_delay = 1 * kMsec;
  profile.burst_rate = 1 * kGbps;
  for (int i = 0; i < 5000; ++i) {
    const bool big = rng.uniform() < 0.1;
    profile.message_sizes.push_back(
        big ? 40 * kKB : static_cast<Bytes>(rng.uniform(1000, 8000)));
  }

  AdvisorOptions opts;
  opts.target_late_fraction = 0.001;

  const auto rec = recommend_guarantee(profile, opts);
  std::printf("workload average bandwidth : %7.1f Mbps\n",
              rec.average_bandwidth / 1e6);
  std::printf("recommended guarantee      : B = %.1f Mbps (%.2fx average), "
              "S = %ld KB, Bmax = %.1f Gbps\n",
              rec.guarantee.bandwidth / 1e6,
              rec.guarantee.bandwidth / rec.average_bandwidth,
              static_cast<long>(rec.guarantee.burst / kKB),
              rec.guarantee.burst_rate / 1e9);
  std::printf("expected late fraction     : %.4f%% (target %.4f%%) — %s\n",
              100 * rec.expected_late_fraction,
              100 * opts.target_late_fraction,
              rec.feasible ? "feasible" : "NOT met by any candidate");

  // For contrast: what Table 1's top-left corner would give this tenant.
  SiloGuarantee naive;
  naive.bandwidth = RateBps{rec.average_bandwidth};
  naive.burst = 40 * kKB;
  naive.delay = profile.packet_delay;
  naive.burst_rate = 1 * kGbps;
  const double naive_late =
      evaluate_late_fraction(profile, naive, 20000, 1);
  std::printf("naive (B = average) choice : %.1f%% of messages late — the\n"
              "paper's Table 1 row-one effect.\n",
              100 * naive_late);
  return 0;
}
