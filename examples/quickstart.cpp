// Quickstart: the three Silo knobs {B, S, d (+Bmax)}, the message-latency
// bound they imply, and a live check of that bound in the packet simulator.
//
//   $ ./quickstart
//
// Walks through: (1) declaring a guarantee, (2) deriving worst-case
// message latency (§4.1), (3) admitting the tenant through Silo's
// placement, and (4) measuring actual message latency under the pacer.
#include <cstdio>

#include "model/guarantee.h"
#include "sim/cluster.h"

using namespace silo;

int main() {
  // 1. A tenant guarantee: 500 Mbps average, 15 KB bursts at up to
  //    1 Gbps, and at most 1 ms of in-network packet delay.
  SiloGuarantee g;
  g.bandwidth = 500 * kMbps;
  g.burst = 15 * kKB;
  g.delay = 1 * kMsec;
  g.burst_rate = 1 * kGbps;

  // 2. The worst-case latency the tenant can derive for its messages,
  //    with no knowledge of any other tenant (that is the whole point).
  for (Bytes m : {Bytes{1500}, Bytes{10 * kKB}, Bytes{100 * kKB}}) {
    std::printf("message %6ld B -> guaranteed latency %8.1f us\n",
                static_cast<long>(m),
                static_cast<double>(max_message_latency(g, m)) / static_cast<double>(kUsec));
  }

  // 3. Admission control + placement on a small 10 GbE cluster.
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 4;
  cfg.topo.vm_slots_per_server = 2;
  cfg.scheme = sim::Scheme::kSilo;
  sim::ClusterSim cluster(cfg);

  TenantRequest request;
  request.num_vms = 8;
  request.guarantee = g;
  request.tenant_class = TenantClass::kDelaySensitive;
  const auto tenant = cluster.add_tenant(request);
  if (!tenant) {
    std::printf("tenant rejected by admission control\n");
    return 1;
  }
  std::printf("\ntenant admitted; VM placement:");
  for (int v = 0; v < request.num_vms; ++v)
    std::printf(" vm%d->s%d", v, cluster.vm_server(*tenant, v));
  std::printf("\n\n");

  // 4. Send a few 10 KB messages between two cross-server VMs and compare
  //    against the bound.
  const TimeNs bound = max_message_latency(g, 10 * kKB);
  int src = 1;
  for (int v = 1; v < request.num_vms; ++v)
    if (cluster.vm_server(*tenant, v) != cluster.vm_server(*tenant, 0)) src = v;
  for (int i = 0; i < 5; ++i) {
    cluster.events().at(i * 10 * kMsec, [&, src] {
      cluster.send_message(*tenant, src, 0, 10 * kKB,
                           [&](const sim::ClusterSim::MessageResult& r) {
                             std::printf(
                                 "10 KB message: %7.1f us (bound %.1f us) %s\n",
                                 static_cast<double>(r.latency) / static_cast<double>(kUsec),
                                 static_cast<double>(bound) / static_cast<double>(kUsec),
                                 r.latency <= bound ? "OK" : "VIOLATED");
                           });
    });
  }
  cluster.run_until(1 * kSec);
  return 0;
}
