// Data-parallel shuffle scenario: a MapReduce-style tenant needs its
// shuffle to finish predictably — which, for large messages, is purely a
// bandwidth guarantee (paper §2.3). Shows per-flow goodput against the
// hose-model share and the resulting shuffle completion time.
#include <cstdio>

#include "model/guarantee.h"
#include "sim/cluster.h"
#include "workload/patterns.h"

using namespace silo;

int main() {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 4;
  cfg.topo.vm_slots_per_server = 2;
  cfg.scheme = sim::Scheme::kSilo;
  sim::ClusterSim cluster(cfg);

  TenantRequest req;
  req.num_vms = 8;
  req.tenant_class = TenantClass::kBandwidthOnly;
  req.guarantee = {2 * kGbps, Bytes{1500}, TimeNs{0}, 2 * kGbps};
  const auto tenant = cluster.add_tenant(req);
  if (!tenant) {
    std::printf("admission failed\n");
    return 1;
  }

  // Shuffle: every mapper sends 4 MB to every reducer (all-to-all).
  const Bytes per_flow = 4 * kMB;
  const auto pairs = workload::all_to_all(8);
  int remaining = static_cast<int>(pairs.size());
  TimeNs shuffle_done {};
  for (const auto& [src, dst] : pairs) {
    cluster.send_message(*tenant, src, dst, per_flow,
                         [&](const sim::ClusterSim::MessageResult&) {
                           if (--remaining == 0)
                             shuffle_done = cluster.events().now();
                         });
  }
  cluster.run_until(5 * kSec);

  // Hose-model estimate: each VM sends to 7 peers from a 2 Gbps hose ->
  // ~286 Mbps per flow -> 4 MB in ~112 ms (plus a little framing).
  SiloGuarantee per_flow_g = req.guarantee;
  per_flow_g.bandwidth = per_flow_g.bandwidth / 7;
  per_flow_g.burst_rate = per_flow_g.bandwidth;
  const TimeNs estimate = max_message_latency(per_flow_g, per_flow);

  std::printf("8-VM shuffle, 4 MB per flow, 2 Gbps hose guarantee\n");
  std::printf("completed: %s\n", remaining == 0 ? "yes" : "NO");
  std::printf("shuffle completion: %.1f ms (hose estimate %.1f ms)\n",
              static_cast<double>(shuffle_done) / static_cast<double>(kMsec),
              static_cast<double>(estimate) / static_cast<double>(kMsec));

  std::printf("\nper-pair goodput (cross-server pairs, Mbps):\n");
  for (int s = 0; s < 8; ++s) {
    for (int d = 0; d < 8; ++d) {
      if (s == d ||
          cluster.vm_server(*tenant, s) == cluster.vm_server(*tenant, d))
        continue;
      const double mbps =
          static_cast<double>(cluster.pair_delivered_bytes(*tenant, s, d)) *
          8.0 / (static_cast<double>(shuffle_done) / static_cast<double>(kSec)) / 1e6 /
          1.0;
      if (s < 2 && d < 4)  // print a readable subset
        std::printf("  vm%d -> vm%d : %6.0f\n", s, d, mbps);
    }
  }
  std::printf(
      "\nWith the guarantee in place the tenant can predict job cost from\n"
      "data volume alone — the property §2.2 argues data-parallel tenants\n"
      "pay for.\n");
  return 0;
}
