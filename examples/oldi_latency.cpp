// OLDI (partition-aggregate) scenario from the paper's introduction: a
// web-search-like tenant fans a query to workers, every worker responds
// at once, and the slowest response dictates user-perceived latency. A
// bandwidth-hungry neighbour shares the cluster.
//
// Runs the same workload under plain TCP and under Silo and prints the
// response-time tail each delivers — the "why Silo exists" demo.
#include <cstdio>

#include "sim/cluster.h"
#include "util/stats.h"
#include "workload/drivers.h"
#include "workload/patterns.h"

using namespace silo;

namespace {

Stats run(sim::Scheme scheme) {
  sim::ClusterConfig cfg;
  cfg.topo.pods = 1;
  cfg.topo.racks_per_pod = 1;
  cfg.topo.servers_per_rack = 5;
  cfg.topo.vm_slots_per_server = 4;
  cfg.scheme = scheme;
  cfg.tcp.min_rto = 10 * kMsec;
  sim::ClusterSim cluster(cfg);

  // The OLDI service: 10 VMs, aggregator + 9 workers.
  TenantRequest oldi;
  oldi.num_vms = 10;
  oldi.tenant_class = TenantClass::kDelaySensitive;
  oldi.guarantee = {300 * kMbps, 15 * kKB, 1 * kMsec, 1 * kGbps};
  const auto svc = cluster.add_tenant(oldi);

  // The neighbour: an 8-VM shuffle blasting all-to-all.
  TenantRequest bulk;
  bulk.num_vms = 8;
  bulk.tenant_class = TenantClass::kBandwidthOnly;
  bulk.guarantee = {1500 * kMbps, Bytes{1500}, TimeNs{0}, 1500 * kMbps};
  const auto noisy = cluster.add_tenant(bulk);

  if (!svc || !noisy) {
    std::printf("admission failed under %s\n", sim::scheme_name(scheme));
    return {};
  }

  workload::BulkDriver shuffle(cluster, *noisy, workload::all_to_all(8),
                               Bytes{256 * kKB});
  shuffle.start(400 * kMsec);

  workload::BurstDriver::Config bc;
  bc.receiver = 9;  // aggregator shares its server with the neighbour
  bc.message_size = 10 * kKB;
  bc.epochs_per_sec = 150;
  workload::BurstDriver queries(cluster, *svc, 10, bc, 99);
  queries.start(400 * kMsec);

  cluster.run_until(500 * kMsec);
  return queries.latencies_us();
}

}  // namespace

int main() {
  std::printf("OLDI worker-response latency with a bulk-transfer neighbour\n");
  std::printf("%-8s %10s %10s %10s %10s\n", "scheme", "p50 (us)", "p95 (us)",
              "p99 (us)", "max (us)");
  for (auto scheme : {sim::Scheme::kTcp, sim::Scheme::kDctcp,
                      sim::Scheme::kSilo}) {
    const auto lat = run(scheme);
    if (lat.empty()) continue;
    std::printf("%-8s %10.0f %10.0f %10.0f %10.0f\n",
                sim::scheme_name(scheme), lat.percentile(50),
                lat.percentile(95), lat.percentile(99), lat.max());
  }
  std::printf(
      "\nA web-search task with a 20 ms budget can spend 16 ms computing\n"
      "if its message tail is bounded at 4 ms (paper §2.2); only the\n"
      "guarantee-based scheme makes that promise hold.\n");
  return 0;
}
