// Walkthrough of the paper's Figure 5: why bandwidth-aware placement is
// not enough and how Silo's queueing constraints drive VM placement.
//
// Three 10 GbE servers; a tenant asks for nine VMs with a 1 Gbps
// guarantee, a 100 KB burst allowance and a 1 ms delay bound. A
// bandwidth-aware placer happily packs VMs so that eight can burst at one
// server's downlink simultaneously — overflowing its buffer — while Silo
// spreads 3/3/3 and bounds every queue.
#include <cstdio>

#include "netcalc/curve.h"
#include "placement/placement.h"

using namespace silo;
using namespace silo::netcalc;

namespace {

void show_port_analysis(const char* label, int senders, Bytes burst,
                        RateBps ingress, RateBps line, Bytes buffer) {
  // One-shot burst arithmetic, as in the paper's example.
  const auto arrival = Curve::rate_limited_burst(
      RateBps{0}, senders * burst, ingress);
  const auto q = analyze_queue(arrival, Curve::constant_rate(line));
  // One MTU of slack: the curve's instantaneous jump is packet-granular.
  const bool fits = q.backlog_bound.value_or(1e18) <=
                    static_cast<double>(buffer + kMtu);
  std::printf(
      "  %-28s %d senders x %3ld KB at %4.0f Gbps -> backlog %6.0f KB %s\n",
      label, senders, static_cast<long>(burst / kKB), ingress / kGbps,
      q.backlog_bound.value_or(-1) / 1e3, fits ? "(fits)" : "(OVERFLOWS)");
}

}  // namespace

int main() {
  const Bytes buffer = 400 * kKB;
  std::printf("Figure 5 worked example — switch buffer %ld KB per port\n\n",
              static_cast<long>(buffer / kKB));

  std::printf(
      "Worst-case burst toward the server hosting the receiver\n"
      "(paper arithmetic, 300 KB switch buffer):\n");
  // Bandwidth-aware placement can leave 8 VMs behind two access links.
  show_port_analysis("bandwidth-aware placement:", 8, 100 * kKB, 20 * kGbps,
                     10 * kGbps, 300 * kKB);
  // Silo's spread leaves at most 6 senders behind the port.
  show_port_analysis("Silo placement:", 6, 100 * kKB, 20 * kGbps, 10 * kGbps,
                     300 * kKB);

  std::printf("\nNow let Silo's placement engine decide:\n");
  topology::TopologyConfig cfg;
  cfg.pods = 1;
  cfg.racks_per_pod = 1;
  cfg.servers_per_rack = 3;
  cfg.vm_slots_per_server = 3;
  cfg.server_link_rate = 10 * kGbps;
  cfg.oversubscription = 1.0;
  cfg.port_buffer = buffer;
  topology::Topology topo(cfg);
  placement::PlacementEngine engine(topo, placement::Policy::kSilo);

  TenantRequest req;
  req.num_vms = 9;
  req.guarantee = {1 * kGbps, 100 * kKB, 1 * kMsec, 10 * kGbps};
  req.tenant_class = TenantClass::kDelaySensitive;
  const auto placed = engine.place(req);
  if (!placed) {
    std::printf("  rejected (buffers too small for the rigorous bound)\n");
    return 0;
  }
  int per_server[3] = {0, 0, 0};
  for (int s : placed->vm_to_server) ++per_server[s];
  std::printf("  placement: %d / %d / %d VMs per server\n", per_server[0],
              per_server[1], per_server[2]);
  for (int p = 0; p < topo.num_ports(); ++p) {
    const topology::PortId id{p};
    const TimeNs bound = engine.port_queue_bound(id);
    if (bound > TimeNs{0})
      std::printf("  port %2d: queue bound %6.1f us (capacity %.1f us)\n", p,
                  static_cast<double>(bound) / static_cast<double>(kUsec),
                  static_cast<double>(topo.port(id).queue_capacity) / static_cast<double>(kUsec));
  }
  std::printf(
      "\nEvery admitted port keeps its worst-case queue within capacity, so\n"
      "synchronized bursts can never overflow a buffer (no loss, bounded\n"
      "delay) — the property the bandwidth-only placement cannot give.\n");
  return 0;
}
